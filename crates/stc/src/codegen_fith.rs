//! The Fith backend: stack code generation for the §5 baseline.
//!
//! The same AST compiles to a zero-address expression-stack program. All
//! control-flow messages are inlined (jumps are all the stack machine has);
//! general block objects are not supported on this backend — the paper's
//! stack-vs-three-address comparison (T3) runs on the block-free workloads.

use std::collections::HashMap;

use com_fith::{FithImage, FithInstr, FithMethod};
use com_isa::Opcode;
use com_mem::{AtomId, Word};

use crate::analysis::{analyze, Analysis};
use crate::ast::{Block, Expr, MethodDef, Program, Stmt};
use crate::CompileError;

/// Compiles a program into a Fith image.
///
/// # Errors
///
/// Returns semantic errors; block literals outside inlinable control flow
/// are unsupported on the stack backend.
pub fn compile_fith_program(program: &Program) -> Result<FithImage, CompileError> {
    let mut analysis = analyze(program)?;
    let mut out = Vec::new();
    for class in &program.classes {
        let class_id = analysis.layout(&class.name)?.id;
        for m in &class.methods {
            let sel = analysis.selector(&m.selector);
            let mut g = FithGen::new(&mut analysis, &class.name, m)?;
            let method = g.run(m)?;
            out.push((class_id, sel, method));
        }
    }
    let mut image = FithImage::empty();
    image.classes = analysis.classes;
    image.atoms = analysis.atoms;
    image.opcodes = analysis.opcodes;
    image.methods = out;
    Ok(image)
}

struct FithGen<'a> {
    analysis: &'a mut Analysis,
    class_name: String,
    code: Vec<FithInstr>,
    consts: Vec<Word>,
    locals: HashMap<String, u16>,
    n_locals: u16,
    ivars: HashMap<String, u16>,
}

/// An unresolved jump placeholder.
struct Patch {
    at: usize,
    conditional: bool,
}

impl<'a> FithGen<'a> {
    fn new(
        analysis: &'a mut Analysis,
        class_name: &str,
        method: &MethodDef,
    ) -> Result<Self, CompileError> {
        let mut locals = HashMap::new();
        let mut n: u16 = 1; // local 0 = self
        for p in &method.params {
            locals.insert(p.clone(), n);
            n += 1;
        }
        for t in &method.temps {
            locals.insert(t.clone(), n);
            n += 1;
        }
        let ivars = analysis.layout(class_name)?.ivars.clone();
        Ok(FithGen {
            analysis,
            class_name: class_name.to_string(),
            code: Vec::new(),
            consts: Vec::new(),
            locals,
            n_locals: n,
            ivars,
        })
    }

    fn run(&mut self, method: &MethodDef) -> Result<FithMethod, CompileError> {
        for stmt in &method.body {
            match stmt {
                Stmt::Return(e) => {
                    self.gen_expr(e)?;
                    self.code.push(FithInstr::ReturnTop);
                }
                Stmt::Expr(e) => {
                    self.gen_expr(e)?;
                    self.code.push(FithInstr::Drop);
                }
            }
        }
        if !matches!(method.body.last(), Some(Stmt::Return(_))) {
            self.code.push(FithInstr::PushLocal(0));
            self.code.push(FithInstr::ReturnTop);
        }
        Ok(FithMethod {
            name: format!("{}>>{}", self.class_name, method.selector),
            n_args: method.params.len() as u8,
            n_locals: self.n_locals,
            code: std::mem::take(&mut self.code),
            consts: std::mem::take(&mut self.consts),
        })
    }

    fn konst(&mut self, w: Word) -> u16 {
        if let Some(i) = self.consts.iter().position(|c| *c == w) {
            return i as u16;
        }
        self.consts.push(w);
        (self.consts.len() - 1) as u16
    }

    fn push_const(&mut self, w: Word) {
        let k = self.konst(w);
        self.code.push(FithInstr::PushConst(k));
    }

    fn alloc_local(&mut self) -> u16 {
        let l = self.n_locals;
        self.n_locals += 1;
        l
    }

    fn jump_placeholder(&mut self, conditional: bool) -> Patch {
        let at = self.code.len();
        self.code.push(if conditional {
            FithInstr::JumpIfFalse(0)
        } else {
            FithInstr::Jump(0)
        });
        Patch { at, conditional }
    }

    fn patch_to_here(&mut self, p: Patch) {
        let disp = self.code.len() as i32 - (p.at as i32 + 1);
        self.code[p.at] = if p.conditional {
            FithInstr::JumpIfFalse(disp)
        } else {
            FithInstr::Jump(disp)
        };
    }

    fn gen_expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(i) => {
                self.push_const(Word::Int(*i));
            }
            Expr::Float(x) => {
                self.push_const(Word::Float(*x));
            }
            Expr::True => self.push_const(Word::from(true)),
            Expr::False => self.push_const(Word::from(false)),
            Expr::Nil => self.push_const(Word::Atom(AtomId(2))),
            Expr::Atom(name) => {
                let id = self.analysis.atoms.intern(name);
                self.push_const(Word::Atom(id));
            }
            Expr::SelfRef => self.code.push(FithInstr::PushLocal(0)),
            Expr::ClassRef(name) => {
                let id = self.analysis.layout(name)?.id;
                self.push_const(Word::Int(id.0 as i64));
            }
            Expr::Var(name) => self.gen_var_read(name)?,
            Expr::Assign(name, value) => {
                self.gen_expr(value)?;
                self.gen_store(name, true)?;
            }
            Expr::Send {
                recv,
                selector,
                args,
            } => self.gen_send(recv, selector, args)?,
            Expr::Block(_) => {
                return Err(CompileError::sem(
                    "general blocks are not supported by the Fith (stack) backend",
                ))
            }
        }
        Ok(())
    }

    fn gen_var_read(&mut self, name: &str) -> Result<(), CompileError> {
        if let Some(l) = self.locals.get(name) {
            self.code.push(FithInstr::PushLocal(*l));
            return Ok(());
        }
        if let Some(idx) = self.ivars.get(name).copied() {
            self.code.push(FithInstr::PushLocal(0));
            self.push_const(Word::Int(idx as i64));
            self.code.push(FithInstr::Send {
                op: Opcode::RAWAT,
                nargs: 1,
            });
            return Ok(());
        }
        Err(CompileError::sem(format!(
            "unknown variable {name} in {}",
            self.class_name
        )))
    }

    /// Stores the top of stack into `name`; when `keep`, the value remains
    /// on the stack as the assignment expression's value.
    fn gen_store(&mut self, name: &str, keep: bool) -> Result<(), CompileError> {
        if let Some(l) = self.locals.get(name).copied() {
            if keep {
                self.code.push(FithInstr::Dup);
            }
            self.code.push(FithInstr::StoreLocal(l));
            return Ok(());
        }
        if let Some(idx) = self.ivars.get(name).copied() {
            // value is on stack; at:put: wants ptr, idx, value.
            let tmp = self.alloc_local();
            self.code.push(FithInstr::StoreLocal(tmp));
            self.code.push(FithInstr::PushLocal(0));
            self.push_const(Word::Int(idx as i64));
            self.code.push(FithInstr::PushLocal(tmp));
            self.code.push(FithInstr::Send {
                op: Opcode::RAWATPUT,
                nargs: 2,
            });
            // at:put: leaves the value on the stack.
            if !keep {
                self.code.push(FithInstr::Drop);
                // keep == false callers expect nothing pushed; but Drop
                // removed the value so the net effect is none. When keep,
                // the value stays.
            }
            return Ok(());
        }
        Err(CompileError::sem(format!(
            "unknown variable {name} in {}",
            self.class_name
        )))
    }

    fn gen_send(&mut self, recv: &Expr, selector: &str, args: &[Expr]) -> Result<(), CompileError> {
        if let Expr::ClassRef(name) = recv {
            if selector == "new" || selector == "new:" {
                return self.gen_new(name, args.first());
            }
        }
        match selector {
            "ifTrue:" | "ifFalse:" | "ifTrue:ifFalse:" | "and:" | "or:" => {
                return self.gen_conditional(recv, selector, args)
            }
            "whileTrue:" => {
                if let (Some(c), Some(b)) = (recv.as_block(), args[0].as_block()) {
                    return self.gen_while(c, b);
                }
                return Err(CompileError::sem(
                    "whileTrue: requires block receiver and argument",
                ));
            }
            "timesRepeat:" => {
                if let Some(b) = args[0].as_block() {
                    return self.gen_times_repeat(recv, b);
                }
                return Err(CompileError::sem("timesRepeat: requires a block argument"));
            }
            "to:do:" => {
                if let Some(b) = args[1].as_block() {
                    return self.gen_to_do(recv, &args[0], b);
                }
                return Err(CompileError::sem("to:do: requires a block argument"));
            }
            _ => {}
        }
        self.gen_expr(recv)?;
        for a in args {
            self.gen_expr(a)?;
        }
        let op = self.analysis.selector(selector);
        self.code.push(FithInstr::Send {
            op,
            nargs: args.len() as u8,
        });
        Ok(())
    }

    fn gen_new(&mut self, class_name: &str, size: Option<&Expr>) -> Result<(), CompileError> {
        let layout = self.analysis.layout(class_name)?.clone();
        self.push_const(Word::Int(layout.id.0 as i64));
        match size {
            None => self.push_const(Word::Int(layout.total_ivars as i64)),
            Some(e) => {
                self.gen_expr(e)?;
                if layout.total_ivars > 0 {
                    self.push_const(Word::Int(layout.total_ivars as i64));
                    self.code.push(FithInstr::Send {
                        op: Opcode::ADD,
                        nargs: 1,
                    });
                }
            }
        }
        self.code.push(FithInstr::Send {
            op: Opcode::NEW,
            nargs: 1,
        });
        Ok(())
    }

    fn gen_inline_block_value(&mut self, b: &Block) -> Result<(), CompileError> {
        // Inline block evaluating to its last expression (or nil).
        let n = b.body.len();
        if n == 0 {
            self.push_const(Word::Atom(AtomId(2)));
            return Ok(());
        }
        for (i, stmt) in b.body.iter().enumerate() {
            match stmt {
                Stmt::Return(e) => {
                    self.gen_expr(e)?;
                    self.code.push(FithInstr::ReturnTop);
                    if i == n - 1 {
                        // Unreachable value for the expression position.
                        self.push_const(Word::Atom(AtomId(2)));
                    }
                }
                Stmt::Expr(e) => {
                    self.gen_expr(e)?;
                    if i != n - 1 {
                        self.code.push(FithInstr::Drop);
                    }
                }
            }
        }
        Ok(())
    }

    fn gen_conditional(
        &mut self,
        recv: &Expr,
        selector: &str,
        args: &[Expr],
    ) -> Result<(), CompileError> {
        let (then_arm, else_arm): (Option<&Block>, Option<&Block>) = match selector {
            "ifTrue:" | "and:" => (args[0].as_block(), None),
            "ifFalse:" | "or:" => (None, args[0].as_block()),
            "ifTrue:ifFalse:" => (args[0].as_block(), args[1].as_block()),
            _ => unreachable!("filtered by caller"),
        };
        self.gen_expr(recv)?;
        let to_else = self.jump_placeholder(true);
        // condition true:
        match (selector, then_arm) {
            ("or:", _) => self.push_const(Word::from(true)),
            (_, Some(b)) => self.gen_inline_block_value(b)?,
            (_, None) => self.push_const(Word::Atom(AtomId(2))),
        }
        let to_end = self.jump_placeholder(false);
        self.patch_to_here(to_else);
        // condition false:
        match (selector, else_arm) {
            ("and:", _) => self.push_const(Word::from(false)),
            (_, Some(b)) => self.gen_inline_block_value(b)?,
            (_, None) => self.push_const(Word::Atom(AtomId(2))),
        }
        self.patch_to_here(to_end);
        Ok(())
    }

    fn gen_while(&mut self, cond: &Block, body: &Block) -> Result<(), CompileError> {
        let top = self.code.len();
        self.gen_inline_block_value(cond)?;
        let exit = self.jump_placeholder(true);
        self.gen_inline_block_value(body)?;
        self.code.push(FithInstr::Drop);
        let back = self.code.len() as i32;
        self.code.push(FithInstr::Jump(top as i32 - (back + 1)));
        self.patch_to_here(exit);
        self.push_const(Word::Atom(AtomId(2)));
        Ok(())
    }

    fn gen_times_repeat(&mut self, count: &Expr, body: &Block) -> Result<(), CompileError> {
        let i = self.alloc_local();
        let n = self.alloc_local();
        self.gen_expr(count)?;
        self.code.push(FithInstr::StoreLocal(n));
        self.push_const(Word::Int(0));
        self.code.push(FithInstr::StoreLocal(i));
        let top = self.code.len();
        self.code.push(FithInstr::PushLocal(i));
        self.code.push(FithInstr::PushLocal(n));
        self.code.push(FithInstr::Send {
            op: Opcode::LT,
            nargs: 1,
        });
        let exit = self.jump_placeholder(true);
        self.gen_inline_block_value(body)?;
        self.code.push(FithInstr::Drop);
        self.code.push(FithInstr::PushLocal(i));
        self.push_const(Word::Int(1));
        self.code.push(FithInstr::Send {
            op: Opcode::ADD,
            nargs: 1,
        });
        self.code.push(FithInstr::StoreLocal(i));
        let back = self.code.len() as i32;
        self.code.push(FithInstr::Jump(top as i32 - (back + 1)));
        self.patch_to_here(exit);
        self.push_const(Word::Atom(AtomId(2)));
        Ok(())
    }

    fn gen_to_do(&mut self, from: &Expr, to: &Expr, body: &Block) -> Result<(), CompileError> {
        if body.params.len() != 1 {
            return Err(CompileError::sem(
                "to:do: block takes exactly one parameter",
            ));
        }
        let i = self.alloc_local();
        let limit = self.alloc_local();
        // Bind the block parameter to the loop local.
        let saved = self.locals.insert(body.params[0].clone(), i);
        self.gen_expr(from)?;
        self.code.push(FithInstr::StoreLocal(i));
        self.gen_expr(to)?;
        self.code.push(FithInstr::StoreLocal(limit));
        let top = self.code.len();
        self.code.push(FithInstr::PushLocal(i));
        self.code.push(FithInstr::PushLocal(limit));
        self.code.push(FithInstr::Send {
            op: Opcode::LE,
            nargs: 1,
        });
        let exit = self.jump_placeholder(true);
        self.gen_inline_block_value(body)?;
        self.code.push(FithInstr::Drop);
        self.code.push(FithInstr::PushLocal(i));
        self.push_const(Word::Int(1));
        self.code.push(FithInstr::Send {
            op: Opcode::ADD,
            nargs: 1,
        });
        self.code.push(FithInstr::StoreLocal(i));
        let back = self.code.len() as i32;
        self.code.push(FithInstr::Jump(top as i32 - (back + 1)));
        self.patch_to_here(exit);
        self.push_const(Word::Atom(AtomId(2)));
        match saved {
            Some(old) => {
                self.locals.insert(body.params[0].clone(), old);
            }
            None => {
                self.locals.remove(&body.params[0]);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use com_fith::FithMachine;

    fn run_fith(src: &str, selector: &str, recv: Word, args: &[Word]) -> Word {
        let program = parse(src).unwrap();
        let image = compile_fith_program(&program).unwrap();
        let mut m = FithMachine::new(&image);
        m.send(&image, selector, recv, args, 10_000_000)
            .unwrap()
            .result
    }

    #[test]
    fn arithmetic_method() {
        let src = "class SmallInteger method double ^self + self end end";
        assert_eq!(run_fith(src, "double", Word::Int(21), &[]), Word::Int(42));
    }

    #[test]
    fn loops_and_temps() {
        let src = r#"
            class SmallInteger
              method sumto | acc i |
                acc := 0. i := 1.
                [ i <= self ] whileTrue: [ acc := acc + i. i := i + 1 ].
                ^acc
              end
            end
        "#;
        assert_eq!(run_fith(src, "sumto", Word::Int(100), &[]), Word::Int(5050));
    }

    #[test]
    fn conditionals() {
        let src = r#"
            class SmallInteger
              method mymax: other
                self > other ifTrue: [ ^self ] ifFalse: [ ^other ]
              end
            end
        "#;
        assert_eq!(
            run_fith(src, "mymax:", Word::Int(3), &[Word::Int(9)]),
            Word::Int(9)
        );
    }

    #[test]
    fn ivars_and_objects() {
        let src = r#"
            class Counter extends Object vars n
              method bump n := n nilToZero + 1. ^n end
            end
            class Atom
              method nilToZero ^0 end
            end
            class SmallInteger
              method nilToZero ^self end
            end
            class UndefinedObject
              method nilToZero ^0 end
            end
            class Driver extends Object
              method go | c |
                c := Counter new.
                c bump. c bump. ^c bump
              end
            end
        "#;
        let program = parse(src).unwrap();
        let image = compile_fith_program(&program).unwrap();
        let mut m = FithMachine::new(&image);
        let driver = image.classes.by_name("Driver").unwrap();
        let obj = m
            .space_mut()
            .create(com_mem::TeamId(0), driver, 1, com_mem::AllocKind::Object)
            .unwrap();
        let out = m
            .send(&image, "go", Word::Ptr(obj), &[], 10_000_000)
            .unwrap();
        assert_eq!(out.result, Word::Int(3));
    }

    #[test]
    fn general_blocks_rejected() {
        let src = "class T method m | b | b := [ 1 ]. ^b value end end";
        let program = parse(src).unwrap();
        assert!(compile_fith_program(&program).is_err());
    }

    #[test]
    fn to_do_loops() {
        let src = r#"
            class SmallInteger
              method squaresum | acc |
                acc := 0.
                1 to: self do: [ :i | acc := acc + (i * i) ].
                ^acc
              end
            end
        "#;
        assert_eq!(
            run_fith(src, "squaresum", Word::Int(10), &[]),
            Word::Int(385)
        );
    }
}
