//! Lexer for the COM Smalltalk dialect.

use crate::CompileError;

/// One token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `class`, `extends`, `vars`, `method`, `end`, `self`, `true`,
    /// `false`, `nil` are produced as identifiers and distinguished in the
    /// parser; this variant carries all identifiers.
    Ident(String),
    /// A keyword-message part: `at:`, `value:`.
    Keyword(String),
    /// A binary selector: `+`, `<=`, `~=`, …
    BinOp(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Atom literal `#foo`.
    Atom(String),
    /// `:=`
    Assign,
    /// `^`
    Caret,
    /// `.`
    Period,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `|`
    Bar,
    /// `:x` block parameter.
    BlockParam(String),
}

/// A token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source.
    pub at: usize,
}

const BINARY_CHARS: &str = "+-*/\\<>=~&@%,";

/// Tokenises `source`. Comments are Smalltalk-style `"…"`.
///
/// # Errors
///
/// Returns [`CompileError::Lex`] on malformed numbers, unterminated
/// comments, or stray characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let at = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '"' => {
                // comment
                i += 1;
                while i < bytes.len() && bytes[i] as char != '"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(CompileError::Lex {
                        at,
                        message: "unterminated comment".into(),
                    });
                }
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    at,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    at,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    token: Token::LBracket,
                    at,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    token: Token::RBracket,
                    at,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Period,
                    at,
                });
                i += 1;
            }
            '^' => {
                out.push(Spanned {
                    token: Token::Caret,
                    at,
                });
                i += 1;
            }
            '#' => {
                i += 1;
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if start == i {
                    return Err(CompileError::Lex {
                        at,
                        message: "empty atom literal".into(),
                    });
                }
                out.push(Spanned {
                    token: Token::Atom(source[start..i].to_string()),
                    at,
                });
            }
            ':' => {
                // `:=` or a block parameter `:x`
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::Assign,
                        at,
                    });
                    i += 2;
                } else {
                    i += 1;
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    if start == i {
                        return Err(CompileError::Lex {
                            at,
                            message: "expected block parameter name after ':'".into(),
                        });
                    }
                    out.push(Spanned {
                        token: Token::BlockParam(source[start..i].to_string()),
                        at,
                    });
                }
            }
            '|' => {
                out.push(Spanned {
                    token: Token::Bar,
                    at,
                });
                i += 1;
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                    && starts_number_context(&out)) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &source[start..i];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| CompileError::Lex {
                        at,
                        message: format!("bad float literal {text:?}"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| CompileError::Lex {
                        at,
                        message: format!("bad integer literal {text:?}"),
                    })?)
                };
                out.push(Spanned { token, at });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                // keyword selector part?
                if i < bytes.len()
                    && bytes[i] == b':'
                    && (i + 1 >= bytes.len() || bytes[i + 1] != b'=')
                {
                    i += 1;
                    out.push(Spanned {
                        token: Token::Keyword(source[start..i].to_string()),
                        at,
                    });
                } else {
                    out.push(Spanned {
                        token: Token::Ident(source[start..i].to_string()),
                        at,
                    });
                }
            }
            c if BINARY_CHARS.contains(c) => {
                let start = i;
                while i < bytes.len() && BINARY_CHARS.contains(bytes[i] as char) {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::BinOp(source[start..i].to_string()),
                    at,
                });
            }
            other => {
                return Err(CompileError::Lex {
                    at,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

/// A `-` starts a negative literal only where a term may begin (after an
/// operator, keyword, open paren…), not after an identifier or literal
/// (where it is the binary minus).
fn starts_number_context(out: &[Spanned]) -> bool {
    match out.last().map(|s| &s.token) {
        None => true,
        Some(Token::Ident(_))
        | Some(Token::Int(_))
        | Some(Token::Float(_))
        | Some(Token::Atom(_))
        | Some(Token::RParen)
        | Some(Token::RBracket) => false,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_message_forms() {
        assert_eq!(
            toks("a at: 3 put: b"),
            vec![
                Token::Ident("a".into()),
                Token::Keyword("at:".into()),
                Token::Int(3),
                Token::Keyword("put:".into()),
                Token::Ident("b".into()),
            ]
        );
        assert_eq!(
            toks("x := y + 1.5"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Ident("y".into()),
                Token::BinOp("+".into()),
                Token::Float(1.5),
            ]
        );
    }

    #[test]
    fn lexes_blocks_and_atoms() {
        assert_eq!(
            toks("[ :x | x ] #foo"),
            vec![
                Token::LBracket,
                Token::BlockParam("x".into()),
                Token::Bar,
                Token::Ident("x".into()),
                Token::RBracket,
                Token::Atom("foo".into()),
            ]
        );
    }

    #[test]
    fn negative_literals_vs_minus() {
        assert_eq!(
            toks("x - 1"),
            vec![
                Token::Ident("x".into()),
                Token::BinOp("-".into()),
                Token::Int(1),
            ]
        );
        assert_eq!(
            toks("( -1 )"),
            vec![Token::LParen, Token::Int(-1), Token::RParen]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("a \"this is a comment\" b").len(), 2);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn compound_binary_selectors() {
        assert_eq!(
            toks("a <= b ~= c"),
            vec![
                Token::Ident("a".into()),
                Token::BinOp("<=".into()),
                Token::Ident("b".into()),
                Token::BinOp("~=".into()),
                Token::Ident("c".into()),
            ]
        );
    }
}
