//! Shared semantic analysis: class ids, instance-variable layout, selector
//! interning — used by both backends.

use std::collections::HashMap;

use com_isa::{Opcode, OpcodeTable};
use com_mem::ClassId;
use com_obj::{AtomTable, ClassTable};

use crate::ast::{ClassDef, Program};
use crate::CompileError;

/// Per-class compile-time layout.
#[derive(Debug, Clone)]
pub struct ClassLayout {
    /// The class id.
    pub id: ClassId,
    /// Instance variable name → absolute word index (superclass ivars
    /// first).
    pub ivars: HashMap<String, u16>,
    /// Total instance variables including inherited.
    pub total_ivars: u16,
}

/// The analysed program: hierarchy built, layouts computed.
#[derive(Debug)]
pub struct Analysis {
    /// The class table (hierarchy + standard primitives).
    pub classes: ClassTable,
    /// Interned atoms.
    pub atoms: AtomTable,
    /// Interned selectors.
    pub opcodes: OpcodeTable,
    /// Layouts by class name.
    pub layouts: HashMap<String, ClassLayout>,
}

impl Analysis {
    /// Resolves a source selector to an opcode, mapping the raw-storage
    /// spellings onto their machine opcodes.
    pub fn selector(&mut self, name: &str) -> Opcode {
        match name {
            "rawGrow:" => Opcode::GROW,
            other => self.opcodes.intern(other),
        }
    }

    /// The layout for a class name.
    ///
    /// # Errors
    ///
    /// Returns a semantic error for unknown classes.
    pub fn layout(&self, name: &str) -> Result<&ClassLayout, CompileError> {
        self.layouts
            .get(name)
            .ok_or_else(|| CompileError::sem(format!("unknown class {name}")))
    }
}

/// Builds the class hierarchy and layouts.
///
/// A `class X` with no `extends` clause *extends* an existing class `X`
/// when one is already defined (used to add methods to `SmallInteger`,
/// `Float`, `Atom`, `Object`); otherwise it defines a fresh subclass of
/// `Object`.
///
/// # Errors
///
/// Returns semantic errors for unknown superclasses, duplicate
/// definitions with conflicting shapes, or ivar redeclaration.
pub fn analyze(program: &Program) -> Result<Analysis, CompileError> {
    let mut classes = ClassTable::new();
    com_obj::install_standard_primitives(&mut classes);
    let mut layouts: HashMap<String, ClassLayout> = HashMap::new();

    // Register the predefined classes so extensions and layouts resolve.
    for name in [
        "Object",
        "UndefinedObject",
        "SmallInteger",
        "Float",
        "Atom",
        "Instruction",
    ] {
        let id = classes.by_name(name).expect("predefined");
        layouts.insert(
            name.to_string(),
            ClassLayout {
                id,
                ivars: HashMap::new(),
                total_ivars: 0,
            },
        );
    }
    // The machine defines Context at load time; give the compiler a view
    // of it so block home pointers can be reasoned about if needed.
    let ctx = classes
        .define("Context", Some(ClassTable::OBJECT), 0)
        .map_err(CompileError::sem)?;
    layouts.insert(
        "Context".into(),
        ClassLayout {
            id: ctx,
            ivars: HashMap::new(),
            total_ivars: 0,
        },
    );

    for def in &program.classes {
        register_class(&mut classes, &mut layouts, def)?;
    }
    Ok(Analysis {
        classes,
        atoms: AtomTable::new(),
        opcodes: OpcodeTable::new(),
        layouts,
    })
}

fn register_class(
    classes: &mut ClassTable,
    layouts: &mut HashMap<String, ClassLayout>,
    def: &ClassDef,
) -> Result<(), CompileError> {
    if def.superclass.is_none() && layouts.contains_key(&def.name) {
        // Extension of an existing class: no new ivars allowed.
        if !def.ivars.is_empty() {
            return Err(CompileError::sem(format!(
                "extension of {} cannot add instance variables",
                def.name
            )));
        }
        return Ok(());
    }
    let super_name = def.superclass.as_deref().unwrap_or("Object");
    let parent = layouts
        .get(super_name)
        .ok_or_else(|| CompileError::sem(format!("unknown superclass {super_name}")))?
        .clone();
    if layouts.contains_key(&def.name) && def.superclass.is_some() {
        return Err(CompileError::sem(format!(
            "class {} is already defined",
            def.name
        )));
    }
    let id = classes
        .define(&def.name, Some(parent.id), def.ivars.len() as u16)
        .map_err(CompileError::sem)?;
    let mut ivars = parent.ivars.clone();
    for (i, name) in def.ivars.iter().enumerate() {
        if ivars
            .insert(name.clone(), parent.total_ivars + i as u16)
            .is_some()
        {
            return Err(CompileError::sem(format!(
                "instance variable {name} shadows an inherited one in {}",
                def.name
            )));
        }
    }
    layouts.insert(
        def.name.clone(),
        ClassLayout {
            id,
            ivars,
            total_ivars: parent.total_ivars + def.ivars.len() as u16,
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn layouts_accumulate_through_inheritance() {
        let p = parse(
            "class A vars x y end
             class B extends A vars z end",
        )
        .unwrap();
        let a = analyze(&p).unwrap();
        let b = a.layout("B").unwrap();
        assert_eq!(b.total_ivars, 3);
        assert_eq!(b.ivars["x"], 0);
        assert_eq!(b.ivars["z"], 2);
    }

    #[test]
    fn extensions_reuse_predefined_classes() {
        let p = parse("class SmallInteger method double ^self + self end end").unwrap();
        let a = analyze(&p).unwrap();
        assert_eq!(a.layout("SmallInteger").unwrap().id, ClassId::SMALL_INT);
    }

    #[test]
    fn unknown_superclass_is_an_error() {
        let p = parse("class A extends Missing end").unwrap();
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn raw_selectors_map_to_machine_opcodes() {
        let p = Program::default();
        let mut a = analyze(&p).unwrap();
        assert_eq!(a.selector("rawAt:"), Opcode::RAWAT);
        assert_eq!(a.selector("rawAt:put:"), Opcode::RAWATPUT);
        assert_eq!(a.selector("rawGrow:"), Opcode::GROW);
        assert_eq!(a.selector("+"), Opcode::ADD);
        assert!(a.selector("frob:").is_user());
    }
}
