//! The COM Smalltalk compiler (§4 of the paper).
//!
//! "A Smalltalk-80 compiler has been written which generates code for the
//! COM." This crate reproduces that piece as a compiler for a compact
//! Smalltalk dialect with two backends:
//!
//! * **COM** — three-address code per §4's model: contexts hold `arg0` (the
//!   result pointer), `arg1` (the receiver), further arguments and
//!   temporaries; sends are abstract opcodes; common control-flow messages
//!   (`ifTrue:`, `whileTrue:`, `to:do:` …) are inlined into jumps, with an
//!   ablation switch ([`CompileOptions::inline_control_flow`]) that builds
//!   real block objects instead.
//! * **Fith** — the stack machine of §5, "an instruction set very different
//!   from the three address instruction set of the COM", for the
//!   stack-vs-three-address comparison (experiment T3).
//!
//! The language (see `parse` docs): `class C extends S … vars a b …
//! method sel … end … end`, unary/binary/keyword sends, blocks
//! `[ :x | … ]`, literals (integers, floats, `#atoms`, `true`/`false`/
//! `nil`), assignment `:=`, return `^`. Raw storage selectors map straight
//! onto machine opcodes: `rawAt:`, `rawAt:put:`, `rawGrow:`, and
//! `ClassName new` / `ClassName new: n` allocate.
//!
//! [`compile_com`] / [`compile_fith`] prepend the standard library
//! ([`stdlib::PRELUDE`]): Array, OrderedCollection, sorting, numeric
//! helpers — the "toolkits" of reusable late-bound code the paper's
//! introduction celebrates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
pub mod ast;
mod codegen_com;
mod codegen_fith;
mod error;
mod lex;
mod parse;
pub mod stdlib;

pub use codegen_com::compile_com_program;
pub use codegen_fith::compile_fith_program;
pub use error::CompileError;
pub use lex::{lex, Token};
pub use parse::parse;

use com_core::ProgramImage;
use com_fith::FithImage;

/// Compilation switches.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Inline `ifTrue:`/`ifFalse:`/`and:`/`or:`/`whileTrue:`/
    /// `timesRepeat:`/`to:do:` into jumps (the paper's compiler behaviour).
    /// When false, conditionals build real block objects and send `value`
    /// (ablation A3); loops remain inlined (jumps are the only looping
    /// construct the hardware offers).
    pub inline_control_flow: bool,
    /// Prepend the standard library.
    pub with_stdlib: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            inline_control_flow: true,
            with_stdlib: true,
        }
    }
}

/// Compiles source text to a COM program image.
///
/// # Errors
///
/// Returns [`CompileError`] for lexical, syntactic or semantic errors.
pub fn compile_com(source: &str, options: CompileOptions) -> Result<ProgramImage, CompileError> {
    let full = if options.with_stdlib {
        format!("{}\n{}", stdlib::PRELUDE, source)
    } else {
        source.to_string()
    };
    let program = parse(&full)?;
    compile_com_program(&program, options)
}

/// Compiles source text to a Fith (stack machine) image.
///
/// # Errors
///
/// Returns [`CompileError`]; real (non-inlinable) blocks are not supported
/// by the stack backend and are reported as errors.
pub fn compile_fith(source: &str, options: CompileOptions) -> Result<FithImage, CompileError> {
    let full = if options.with_stdlib {
        format!("{}\n{}", stdlib::PRELUDE, source)
    } else {
        source.to_string()
    };
    let program = parse(&full)?;
    compile_fith_program(&program)
}
