//! The standard library: the "toolkits" of reusable late-bound code that
//! §2.1 argues late binding makes practical. Compiled into every program by
//! default; written to run on both the COM and the Fith backends (no
//! general blocks — only inlinable control flow).

/// Prelude source prepended to user programs.
pub const PRELUDE: &str = r#"
"=== COM Smalltalk standard library ==="

class Object
  method isNil ^false end
  method yourself ^self end
end

"Software trap handlers: defining 'method doesNotUnderstand: msg' (or
 'method badOperands: msg') on any class installs that class's handler —
 a failed send (or a function-unit operand trap, e.g. divide by zero)
 whose receiver is an instance re-dispatches to the handler instead of
 killing the program, and the handler's answer becomes the faulting
 operation's result. The reified message is a 3-word object read with
 the fixed-opcode rawAt: — 'msg rawAt: 0' is the failed selector's
 opcode, 'msg rawAt: 1' the send's nargs (receiver included), and
 'msg rawAt: 2' the transmitted argument. (Deliberately not wrapped in
 stdlib accessor methods: the prelude interns no selectors for this, so
 programs that never install a handler get byte-identical images.)"

class UndefinedObject
  method isNil ^true end
end

class Atom
  method not self ifTrue: [ ^false ]. ^true end
  method isNil ^self == nil end
end

class SmallInteger
  method abs self < 0 ifTrue: [ ^0 - self ]. ^self end
  method min: x self < x ifTrue: [ ^self ]. ^x end
  method max: x self > x ifTrue: [ ^self ]. ^x end
  method between: lo and: hi ^(self >= lo) and: [ self <= hi ] end
  method even ^(self \\ 2) = 0 end
  method odd ^(self \\ 2) = 1 end
  method sign self < 0 ifTrue: [ ^0 - 1 ]. self > 0 ifTrue: [ ^1 ]. ^0 end
  method squared ^self * self end
  method gcd: x | a b t |
    a := self abs. b := x abs.
    [ b > 0 ] whileTrue: [ t := a \\ b. a := b. b := t ].
    ^a
  end
  method newArray ^(Array new: self) setTally: self end
end

class Float
  method abs self < 0.0 ifTrue: [ ^0.0 - self ]. ^self end
  method min: x self < x ifTrue: [ ^self ]. ^x end
  method max: x self > x ifTrue: [ ^self ]. ^x end
  method squared ^self * self end
end

"Indexable storage. Word 0 holds the element count (tally); elements are
 1-based at words 1..tally, so rawAt: i addresses element i directly."
class Array extends Object
  vars tally
  method setTally: n tally := n. ^self end
  method size ^tally end
  method at: i ^self rawAt: i end
  method at: i put: v ^self rawAt: i put: v end
  method first ^self rawAt: 1 end
  method last ^self rawAt: tally end
  method fill: v 1 to: tally do: [ :i | self rawAt: i put: v ]. ^self end
  method sum | acc | acc := 0. 1 to: tally do: [ :i | acc := acc + (self rawAt: i) ]. ^acc end
  method maxElement | m |
    m := self rawAt: 1.
    2 to: tally do: [ :i | m := m max: (self rawAt: i) ].
    ^m
  end
  method swap: i with: j | t |
    t := self rawAt: i.
    self rawAt: i put: (self rawAt: j).
    self rawAt: j put: t.
    ^self
  end
  "Polymorphic quicksort: elements are compared with <, so one routine
   sorts integers, floats, or any class defining < — the reusable general
   sort the paper's introduction promises."
  method quicksortFrom: lo to: hi | i j pv |
    lo >= hi ifTrue: [ ^self ].
    i := lo. j := hi. pv := self rawAt: (lo + hi) / 2.
    [ i <= j ] whileTrue: [
      [ (self rawAt: i) < pv ] whileTrue: [ i := i + 1 ].
      [ pv < (self rawAt: j) ] whileTrue: [ j := j - 1 ].
      i <= j ifTrue: [ self swap: i with: j. i := i + 1. j := j - 1 ] ].
    self quicksortFrom: lo to: j.
    self quicksortFrom: i to: hi.
    ^self
  end
  method sort ^self quicksortFrom: 1 to: tally end
  method isSorted | ok |
    ok := true.
    2 to: tally do: [ :i |
      (self rawAt: i) < (self rawAt: i - 1) ifTrue: [ ok := false ] ].
    ^ok
  end
end

"Growable sequence backed by an Array; growth exercises the §2.2
 floating point address aliasing machinery through rawGrow:."
class OrderedCollection extends Object
  vars items count
  method init items := 4 newArray. count := 0. ^self end
  method size ^count end
  method capacity ^items size end
  method add: v
    count = items size ifTrue: [ self growTo: count * 2 + 4 ].
    count := count + 1.
    items rawAt: count put: v.
    ^v
  end
  method growTo: n
    items := items rawGrow: n + 1.
    items setTally: n.
    ^self
  end
  method at: i ^items rawAt: i end
  method at: i put: v ^items rawAt: i put: v end
  method first ^items rawAt: 1 end
  method last ^items rawAt: count end
  method sum | acc | acc := 0. 1 to: count do: [ :i | acc := acc + (items rawAt: i) ]. ^acc end
  method sort items quicksortFrom: 1 to: count. ^self end
  method isSorted | ok |
    ok := true.
    2 to: count do: [ :i |
      (items rawAt: i) < (items rawAt: i - 1) ifTrue: [ ok := false ] ].
    ^ok
  end
end
"#;

#[cfg(test)]
mod tests {
    use crate::{compile_com, compile_fith, CompileOptions};

    #[test]
    fn prelude_compiles_on_both_backends() {
        let opts = CompileOptions::default();
        compile_com("", opts).expect("COM prelude");
        compile_fith("", opts).expect("Fith prelude");
    }
}
