//! Recursive-descent parser.
//!
//! Grammar (Smalltalk precedence: unary > binary > keyword):
//!
//! ```text
//! program  := classdef*
//! classdef := 'class' IDENT ('extends' IDENT)? ('vars' IDENT*)? method* 'end'
//! method   := 'method' pattern ('|' IDENT* '|')? statements 'end'
//! pattern  := IDENT | BINOP IDENT | (KEYWORD IDENT)+
//! stmts    := stmt ('.' stmt)* '.'?
//! stmt     := '^' expr | expr
//! expr     := IDENT ':=' expr | keyword
//! keyword  := binary (KEYWORD binary)*
//! binary   := unary (BINOP unary)*
//! unary    := primary IDENT*
//! primary  := literal | IDENT | '(' expr ')' | block
//! block    := '[' (BLOCKPARAM* '|')? stmts ']'
//! ```

use crate::ast::{Block, ClassDef, Expr, MethodDef, Program, Stmt};
use crate::lex::{lex, Spanned, Token};
use crate::CompileError;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parses a program.
///
/// # Errors
///
/// Returns [`CompileError::Lex`] or [`CompileError::Parse`].
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let mut classes = Vec::new();
    while !p.at_end() {
        classes.push(p.class_def()?);
    }
    Ok(Program { classes })
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.token)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.at)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError::Parse {
            at: self.here(),
            message: message.into(),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn eat_keyword_ident(&mut self, word: &str) -> bool {
        if self.peek() == Some(&Token::Ident(word.to_string())) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn class_def(&mut self) -> Result<ClassDef, CompileError> {
        if !self.eat_keyword_ident("class") {
            return Err(self.err("expected 'class'"));
        }
        let name = self.expect_ident("class name")?;
        let superclass = if self.eat_keyword_ident("extends") {
            Some(self.expect_ident("superclass name")?)
        } else {
            None
        };
        let mut ivars = Vec::new();
        if self.eat_keyword_ident("vars") {
            while let Some(Token::Ident(s)) = self.peek() {
                if s == "method" || s == "end" {
                    break;
                }
                ivars.push(s.clone());
                self.pos += 1;
            }
        }
        let mut methods = Vec::new();
        loop {
            if self.eat_keyword_ident("end") {
                break;
            }
            if self.eat_keyword_ident("method") {
                methods.push(self.method_def()?);
            } else {
                return Err(self.err("expected 'method' or 'end' in class body"));
            }
        }
        Ok(ClassDef {
            name,
            superclass,
            ivars,
            methods,
        })
    }

    fn method_def(&mut self) -> Result<MethodDef, CompileError> {
        // Pattern.
        let (selector, params) = match self.bump() {
            Some(Token::Ident(name)) => (name, vec![]),
            Some(Token::BinOp(op)) => {
                let p = self.expect_ident("binary parameter")?;
                (op, vec![p])
            }
            Some(Token::Keyword(first)) => {
                let mut sel = first;
                let mut params = vec![self.expect_ident("keyword parameter")?];
                while let Some(Token::Keyword(k)) = self.peek() {
                    sel.push_str(&k.clone());
                    self.pos += 1;
                    params.push(self.expect_ident("keyword parameter")?);
                }
                (sel, params)
            }
            other => return Err(self.err(format!("expected method pattern, found {other:?}"))),
        };
        // Temporaries.
        let mut temps = Vec::new();
        if self.peek() == Some(&Token::Bar) {
            self.pos += 1;
            loop {
                match self.bump() {
                    Some(Token::Ident(s)) => temps.push(s),
                    Some(Token::Bar) => break,
                    other => {
                        return Err(self.err(format!("expected temp name or '|', found {other:?}")))
                    }
                }
            }
        }
        let body = self.statements(&Token::Ident("end".into()))?;
        if !self.eat_keyword_ident("end") {
            return Err(self.err("expected 'end' after method body"));
        }
        Ok(MethodDef {
            selector,
            params,
            temps,
            body,
        })
    }

    /// Parses statements until `terminator` (not consumed).
    fn statements(&mut self, terminator: &Token) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::new();
        loop {
            if self.peek() == Some(terminator) || self.at_end() {
                break;
            }
            let stmt = if self.peek() == Some(&Token::Caret) {
                self.pos += 1;
                Stmt::Return(self.expr()?)
            } else {
                Stmt::Expr(self.expr()?)
            };
            out.push(stmt);
            if self.peek() == Some(&Token::Period) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        // Assignment lookahead: IDENT ':='
        if let Some(Token::Ident(name)) = self.peek() {
            if self.toks.get(self.pos + 1).map(|s| &s.token) == Some(&Token::Assign) {
                let name = name.clone();
                self.pos += 2;
                let value = self.expr()?;
                return Ok(Expr::Assign(name, Box::new(value)));
            }
        }
        self.keyword_expr()
    }

    fn keyword_expr(&mut self) -> Result<Expr, CompileError> {
        let recv = self.binary_expr()?;
        if let Some(Token::Keyword(_)) = self.peek() {
            let mut selector = String::new();
            let mut args = Vec::new();
            while let Some(Token::Keyword(k)) = self.peek() {
                selector.push_str(&k.clone());
                self.pos += 1;
                args.push(self.binary_expr()?);
            }
            Ok(Expr::Send {
                recv: Box::new(recv),
                selector,
                args,
            })
        } else {
            Ok(recv)
        }
    }

    fn binary_expr(&mut self) -> Result<Expr, CompileError> {
        let mut left = self.unary_expr()?;
        while let Some(Token::BinOp(op)) = self.peek() {
            let op = op.clone();
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Send {
                recv: Box::new(left),
                selector: op,
                args: vec![right],
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let mut recv = self.primary()?;
        while let Some(Token::Ident(name)) = self.peek() {
            // Structural keywords never act as unary selectors.
            if matches!(
                name.as_str(),
                "end" | "method" | "class" | "extends" | "vars"
            ) {
                break;
            }
            let name = name.clone();
            self.pos += 1;
            recv = Expr::Send {
                recv: Box::new(recv),
                selector: name,
                args: vec![],
            };
        }
        Ok(recv)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Expr::Int(i)),
            Some(Token::Float(x)) => Ok(Expr::Float(x)),
            Some(Token::Atom(a)) => Ok(Expr::Atom(a)),
            Some(Token::Ident(name)) => Ok(match name.as_str() {
                "self" => Expr::SelfRef,
                "true" => Expr::True,
                "false" => Expr::False,
                "nil" => Expr::Nil,
                _ => {
                    if name.chars().next().is_some_and(char::is_uppercase) {
                        Expr::ClassRef(name)
                    } else {
                        Expr::Var(name)
                    }
                }
            }),
            Some(Token::LParen) => {
                let e = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(e),
                    other => Err(self.err(format!("expected ')', found {other:?}"))),
                }
            }
            Some(Token::LBracket) => {
                let mut params = Vec::new();
                while let Some(Token::BlockParam(p)) = self.peek() {
                    params.push(p.clone());
                    self.pos += 1;
                }
                if !params.is_empty() {
                    match self.bump() {
                        Some(Token::Bar) => {}
                        other => {
                            return Err(self
                                .err(format!("expected '|' after block params, found {other:?}")))
                        }
                    }
                }
                let body = self.statements(&Token::RBracket)?;
                match self.bump() {
                    Some(Token::RBracket) => Ok(Expr::Block(Block { params, body })),
                    other => Err(self.err(format!("expected ']', found {other:?}"))),
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_with_methods() {
        let src = r#"
            class Point extends Object
              vars x y
              method setX: ax y: ay
                x := ax. y := ay. ^self
              end
              method x ^x end
            end
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.name, "Point");
        assert_eq!(c.superclass.as_deref(), Some("Object"));
        assert_eq!(c.ivars, vec!["x", "y"]);
        assert_eq!(c.methods.len(), 2);
        assert_eq!(c.methods[0].selector, "setX:y:");
        assert_eq!(c.methods[0].params, vec!["ax", "ay"]);
        assert_eq!(c.methods[1].selector, "x");
    }

    #[test]
    fn precedence_unary_binary_keyword() {
        let src = "class T method m ^a foo + b bar at: c baz end end";
        let p = parse(src).unwrap();
        let Stmt::Return(e) = &p.classes[0].methods[0].body[0] else {
            panic!("expected return")
        };
        // (a foo + b bar) at: (c baz)
        let Expr::Send {
            selector,
            recv,
            args,
        } = e
        else {
            panic!()
        };
        assert_eq!(selector, "at:");
        let Expr::Send { selector: plus, .. } = recv.as_ref() else {
            panic!()
        };
        assert_eq!(plus, "+");
        let Expr::Send { selector: baz, .. } = &args[0] else {
            panic!()
        };
        assert_eq!(baz, "baz");
    }

    #[test]
    fn parses_blocks_and_temps() {
        let src =
            "class T method m | acc | acc := 0. [ :i | acc := acc + i ] value: 3. ^acc end end";
        let p = parse(src).unwrap();
        let m = &p.classes[0].methods[0];
        assert_eq!(m.temps, vec!["acc"]);
        assert_eq!(m.body.len(), 3);
    }

    #[test]
    fn keyword_chains_merge_into_one_selector() {
        let src = "class T method m ^d at: 1 put: 2 end end";
        let p = parse(src).unwrap();
        let Stmt::Return(Expr::Send { selector, args, .. }) = &p.classes[0].methods[0].body[0]
        else {
            panic!()
        };
        assert_eq!(selector, "at:put:");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn class_extension_without_extends() {
        let src = "class SmallInteger method double ^self + self end end";
        let p = parse(src).unwrap();
        assert_eq!(p.classes[0].superclass, None);
        assert!(p.classes[0].ivars.is_empty());
    }

    #[test]
    fn errors_are_positioned() {
        assert!(matches!(parse("class"), Err(CompileError::Parse { .. })));
        assert!(
            parse("class T method m ^1 end").is_err(),
            "missing class end"
        );
    }
}
