//! The COM backend: three-address code generation per §4.
//!
//! Context layout (operand space; two linkage words precede it):
//! slot 0 = arg0 (result pointer), slot 1 = self, slots 2.. = arguments,
//! then declared temporaries, then expression scratch. The paper's Figure 9
//! shows the same shape (`c0` result pointer, `c1` self).

use std::collections::HashMap;

use com_core::ProgramImage;
use com_isa::{Assembler, Instr, Opcode, Operand};
use com_mem::{AtomId, ClassId, Word};

use crate::analysis::{analyze, Analysis};
use crate::ast::{Block, Expr, MethodDef, Program, Stmt};
use crate::{CompileError, CompileOptions};

/// Operand slots available to a method (32-word context minus 2 linkage).
const MAX_SLOTS: u8 = 30;

/// Compiles an analysed program into a COM image.
///
/// # Errors
///
/// Returns semantic errors (unknown names, slot exhaustion, unsupported
/// constructs).
pub fn compile_com_program(
    program: &Program,
    options: CompileOptions,
) -> Result<ProgramImage, CompileError> {
    let mut analysis = analyze(program)?;
    let mut methods = Vec::new();
    let mut block_counter = 0usize;

    for class in &program.classes {
        let class_id = analysis.layout(&class.name)?.id;
        for m in &class.methods {
            let mut pending = vec![(class.name.clone(), class_id, m.clone(), None)];
            while let Some((cls_name, cls_id, method, outer)) = pending.pop() {
                let sel = analysis.selector(&method.selector);
                let mut g = MethodGen::new(
                    &mut analysis,
                    options,
                    cls_name.clone(),
                    &method,
                    outer,
                    &mut block_counter,
                )?;
                let code = g.run(&method)?;
                for extra in g.blocks_out {
                    pending.push(extra);
                }
                methods.push((cls_id, sel, code));
            }
        }
    }

    let mut image = ProgramImage::empty();
    image.classes = analysis.classes;
    image.atoms = analysis.atoms;
    image.opcodes = analysis.opcodes;
    for (class, sel, code) in methods {
        image.add_method(class, sel, code);
    }
    Ok(image)
}

/// How a name resolves inside the method being compiled.
#[derive(Debug, Clone, Copy)]
enum Binding {
    /// A context slot (parameter, temporary, or block parameter).
    Slot(u8),
    /// An instance variable of `self`.
    Ivar(u16),
    /// A slot of the *defining* method's context, reached through the block
    /// object's captured home pointer.
    OuterSlot(u8),
    /// An instance variable of the defining method's receiver, reached
    /// through the block object's captured outer self.
    OuterIvar(u16),
}

/// Environment captured by a block: outer slot map + outer class name.
#[derive(Debug, Clone)]
struct OuterEnv {
    slots: HashMap<String, u8>,
    class_name: String,
}

/// A value produced by expression compilation.
#[derive(Debug, Clone, Copy)]
struct Val {
    op: Operand,
    /// Scratch slot to free once consumed.
    owned: Option<u8>,
}

struct MethodGen<'a> {
    analysis: &'a mut Analysis,
    options: CompileOptions,
    class_name: String,
    asm: Assembler,
    names: HashMap<String, Binding>,
    scratch_base: u8,
    scratch_next: u8,
    /// Blocks hoisted into their own classes: (class name, id, method, env).
    blocks_out: Vec<(String, ClassId, MethodDef, Option<OuterEnv>)>,
    block_counter: &'a mut usize,
    /// Whether this method *is* a block body (affects name resolution).
    outer: Option<OuterEnv>,
    /// Slot holding the loaded home pointer, for block bodies.
    home_slot: Option<u8>,
    /// Slot holding the loaded outer self, for block bodies.
    outer_self_slot: Option<u8>,
}

impl<'a> MethodGen<'a> {
    fn new(
        analysis: &'a mut Analysis,
        options: CompileOptions,
        class_name: String,
        method: &MethodDef,
        outer: Option<OuterEnv>,
        block_counter: &'a mut usize,
    ) -> Result<Self, CompileError> {
        let mut names = HashMap::new();
        // slot 0 = arg0, slot 1 = self, params from slot 2.
        let mut next = 2u8;
        for p in &method.params {
            names.insert(p.clone(), Binding::Slot(next));
            next += 1;
        }
        for t in &method.temps {
            names.insert(t.clone(), Binding::Slot(next));
            next += 1;
        }
        // Instance variables of the defining class (not for block bodies —
        // those resolve through the outer environment instead).
        if outer.is_none() {
            let layout = analysis.layout(&class_name)?.clone();
            for (name, idx) in layout.ivars {
                names.entry(name).or_insert(Binding::Ivar(idx));
            }
        }
        let n_args = 1 + method.params.len() as u8;
        Ok(MethodGen {
            analysis,
            options,
            class_name: class_name.clone(),
            asm: Assembler::new(format!("{class_name}>>{}", method.selector), n_args),
            names,
            scratch_base: next,
            scratch_next: next,
            blocks_out: Vec::new(),
            block_counter,
            outer,
            home_slot: None,
            outer_self_slot: None,
        })
    }

    fn run(&mut self, method: &MethodDef) -> Result<com_isa::CodeObject, CompileError> {
        if self.outer.is_some() {
            // Block prologue: load the captured home pointer and outer self
            // from the block object (ivars 0 and 1 of `self`).
            let home = self.alloc_scratch()?;
            let k0 = self.asm.intern_const(Word::Int(0));
            self.emit(Instr::three(
                Opcode::RAWAT,
                Operand::Cur(home),
                Operand::Cur(1),
                Operand::Const(k0),
            ))?;
            let oself = self.alloc_scratch()?;
            let k1 = self.asm.intern_const(Word::Int(1));
            self.emit(Instr::three(
                Opcode::RAWAT,
                Operand::Cur(oself),
                Operand::Cur(1),
                Operand::Const(k1),
            ))?;
            self.home_slot = Some(home);
            self.outer_self_slot = Some(oself);
            // These scratches stay live for the whole body.
            self.scratch_base = self.scratch_next;
        }
        let n = method.body.len();
        for (i, stmt) in method.body.iter().enumerate() {
            match stmt {
                Stmt::Return(e) => {
                    if self.outer.is_some() {
                        return Err(CompileError::sem(
                            "non-local return (^) inside a block is not supported",
                        ));
                    }
                    let v = self.gen_expr(e)?;
                    self.emit_return(v)?;
                    self.free(v);
                }
                Stmt::Expr(e) => {
                    let v = self.gen_expr(e)?;
                    // A block's value is its last expression.
                    if self.outer.is_some() && i == n - 1 {
                        self.emit_return(v)?;
                    }
                    self.free(v);
                }
            }
            debug_assert_eq!(self.scratch_next, self.scratch_base, "scratch leak");
        }
        // Implicit return: ^self for methods, ^nil for empty blocks whose
        // last statement was a Return (unreachable) or which are empty.
        let needs_implicit = match method.body.last() {
            Some(Stmt::Return(_)) => false,
            Some(Stmt::Expr(_)) => self.outer.is_none(),
            None => true,
        };
        if needs_implicit {
            let v = if self.outer.is_none() {
                Val {
                    op: Operand::Cur(1),
                    owned: None,
                }
            } else {
                let k = self.asm.intern_const(Word::Atom(AtomId(2)));
                Val {
                    op: Operand::Const(k),
                    owned: None,
                }
            };
            self.emit_return(v)?;
        }
        std::mem::replace(&mut self.asm, Assembler::new("done", 0))
            .finish()
            .map_err(|e| CompileError::sem(format!("assembly failed: {e}")))
    }

    // ---------------- slot management ----------------

    fn alloc_scratch(&mut self) -> Result<u8, CompileError> {
        if self.scratch_next >= MAX_SLOTS {
            return Err(CompileError::sem(format!(
                "method too large: more than {MAX_SLOTS} context slots needed in {}",
                self.class_name
            )));
        }
        let s = self.scratch_next;
        self.scratch_next += 1;
        Ok(s)
    }

    fn free(&mut self, v: Val) {
        if let Some(s) = v.owned {
            // Stack discipline: scratch frees in reverse allocation order.
            debug_assert_eq!(s + 1, self.scratch_next, "scratch freed out of order");
            self.scratch_next = s;
        }
    }

    fn emit(&mut self, i: Result<Instr, com_isa::IsaError>) -> Result<(), CompileError> {
        let i = i.map_err(|e| CompileError::sem(format!("bad instruction: {e}")))?;
        self.asm.emit(i);
        Ok(())
    }

    /// Ensures a value lives in a context slot (needed as a write target or
    /// a `Next` store source); constants get a MOVE into fresh scratch.
    fn materialize(&mut self, v: Val) -> Result<Val, CompileError> {
        match v.op {
            Operand::Cur(_) | Operand::Next(_) => Ok(v),
            Operand::Const(_) => {
                let s = self.alloc_scratch()?;
                self.emit(Instr::three(Opcode::MOVE, Operand::Cur(s), v.op, v.op))?;
                Ok(Val {
                    op: Operand::Cur(s),
                    owned: Some(s),
                })
            }
        }
    }

    fn const_val(&mut self, w: Word) -> Val {
        let k = self.asm.intern_const(w);
        Val {
            op: Operand::Const(k),
            owned: None,
        }
    }

    fn emit_return(&mut self, v: Val) -> Result<(), CompileError> {
        self.emit(Instr::three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            v.op,
            v.op,
            true,
        ))
    }

    // ---------------- expressions ----------------

    fn gen_expr(&mut self, e: &Expr) -> Result<Val, CompileError> {
        match e {
            Expr::Int(i) => Ok(self.const_val(Word::Int(*i))),
            Expr::Float(x) => Ok(self.const_val(Word::Float(*x))),
            Expr::True => Ok(self.const_val(Word::from(true))),
            Expr::False => Ok(self.const_val(Word::from(false))),
            Expr::Nil => Ok(self.const_val(Word::Atom(AtomId(2)))),
            Expr::Atom(name) => {
                let id = self.analysis.atoms.intern(name);
                Ok(self.const_val(Word::Atom(id)))
            }
            Expr::SelfRef => {
                // Inside a block body, `self` is the *defining* method's
                // receiver (captured as the block object's second ivar and
                // loaded by the prologue), not the block object itself.
                let slot = self.outer_self_slot.unwrap_or(1);
                Ok(Val {
                    op: Operand::Cur(slot),
                    owned: None,
                })
            }
            Expr::ClassRef(name) => {
                let id = self.analysis.layout(name)?.id;
                Ok(self.const_val(Word::Int(id.0 as i64)))
            }
            Expr::Var(name) => self.gen_var_read(name),
            Expr::Assign(name, value) => self.gen_assign(name, value),
            Expr::Send {
                recv,
                selector,
                args,
            } => self.gen_send(recv, selector, args),
            Expr::Block(b) => self.gen_block_object(b),
        }
    }

    fn binding(&self, name: &str) -> Result<Binding, CompileError> {
        if let Some(b) = self.names.get(name) {
            return Ok(*b);
        }
        if let Some(outer) = &self.outer {
            if let Some(slot) = outer.slots.get(name) {
                return Ok(Binding::OuterSlot(*slot));
            }
            if let Some(layout) = self.analysis.layouts.get(&outer.class_name) {
                if let Some(idx) = layout.ivars.get(name) {
                    return Ok(Binding::OuterIvar(*idx));
                }
            }
        }
        Err(CompileError::sem(format!(
            "unknown variable {name} in {}",
            self.class_name
        )))
    }

    fn gen_var_read(&mut self, name: &str) -> Result<Val, CompileError> {
        match self.binding(name)? {
            Binding::Slot(s) => Ok(Val {
                op: Operand::Cur(s),
                owned: None,
            }),
            Binding::Ivar(idx) => {
                let dest = self.alloc_scratch()?;
                let k = self.asm.intern_const(Word::Int(idx as i64));
                self.emit(Instr::three(
                    Opcode::RAWAT,
                    Operand::Cur(dest),
                    Operand::Cur(1),
                    Operand::Const(k),
                ))?;
                Ok(Val {
                    op: Operand::Cur(dest),
                    owned: Some(dest),
                })
            }
            Binding::OuterSlot(s) => {
                let home = self.home_slot.expect("block prologue ran");
                let dest = self.alloc_scratch()?;
                let k = self.asm.intern_const(Word::Int(s as i64));
                self.emit(Instr::three(
                    Opcode::RAWAT,
                    Operand::Cur(dest),
                    Operand::Cur(home),
                    Operand::Const(k),
                ))?;
                Ok(Val {
                    op: Operand::Cur(dest),
                    owned: Some(dest),
                })
            }
            Binding::OuterIvar(idx) => {
                let oself = self.outer_self_slot.expect("block prologue ran");
                let dest = self.alloc_scratch()?;
                let k = self.asm.intern_const(Word::Int(idx as i64));
                self.emit(Instr::three(
                    Opcode::RAWAT,
                    Operand::Cur(dest),
                    Operand::Cur(oself),
                    Operand::Const(k),
                ))?;
                Ok(Val {
                    op: Operand::Cur(dest),
                    owned: Some(dest),
                })
            }
        }
    }

    fn gen_assign(&mut self, name: &str, value: &Expr) -> Result<Val, CompileError> {
        let v = self.gen_expr(value)?;
        match self.binding(name)? {
            Binding::Slot(s) => {
                self.emit(Instr::three(Opcode::MOVE, Operand::Cur(s), v.op, v.op))?;
                self.free(v);
                Ok(Val {
                    op: Operand::Cur(s),
                    owned: None,
                })
            }
            Binding::Ivar(idx) => {
                // at:put: roles: A = value (read), B = object, C = index.
                let vm = self.materialize(v)?;
                let k = self.asm.intern_const(Word::Int(idx as i64));
                self.emit(Instr::three(
                    Opcode::RAWATPUT,
                    slot_of(vm.op)?,
                    Operand::Cur(1),
                    Operand::Const(k),
                ))?;
                Ok(vm)
            }
            Binding::OuterSlot(s) => {
                let home = self.home_slot.expect("block prologue ran");
                let vm = self.materialize(v)?;
                let k = self.asm.intern_const(Word::Int(s as i64));
                self.emit(Instr::three(
                    Opcode::RAWATPUT,
                    slot_of(vm.op)?,
                    Operand::Cur(home),
                    Operand::Const(k),
                ))?;
                Ok(vm)
            }
            Binding::OuterIvar(idx) => {
                let oself = self.outer_self_slot.expect("block prologue ran");
                let vm = self.materialize(v)?;
                let k = self.asm.intern_const(Word::Int(idx as i64));
                self.emit(Instr::three(
                    Opcode::RAWATPUT,
                    slot_of(vm.op)?,
                    Operand::Cur(oself),
                    Operand::Const(k),
                ))?;
                Ok(vm)
            }
        }
    }

    // ---------------- sends ----------------

    fn gen_send(
        &mut self,
        recv: &Expr,
        selector: &str,
        args: &[Expr],
    ) -> Result<Val, CompileError> {
        // Allocation intrinsics: `Class new` / `Class new: size`.
        if let Expr::ClassRef(name) = recv {
            if selector == "new" || selector == "new:" {
                return self.gen_new(name, args.first());
            }
        }
        // Control flow.
        match selector {
            "ifTrue:" | "ifFalse:" | "ifTrue:ifFalse:" | "and:" | "or:" => {
                return self.gen_conditional(recv, selector, args)
            }
            "whileTrue:" => {
                if let Some(cond) = recv.as_block() {
                    if let Some(body) = args[0].as_block() {
                        return self.gen_while(cond, body);
                    }
                }
                return Err(CompileError::sem(
                    "whileTrue: requires block receiver and block argument",
                ));
            }
            "timesRepeat:" => {
                if let Some(body) = args[0].as_block() {
                    return self.gen_times_repeat(recv, body);
                }
                return Err(CompileError::sem("timesRepeat: requires a block argument"));
            }
            "to:do:" => {
                if let Some(body) = args[1].as_block() {
                    return self.gen_to_do(recv, &args[0], body);
                }
                return Err(CompileError::sem("to:do: requires a block argument"));
            }
            _ => {}
        }

        // Ordinary send: evaluate receiver and arguments left-to-right.
        let rv = self.gen_expr(recv)?;
        let mut argvals = Vec::with_capacity(args.len());
        for a in args {
            argvals.push(self.gen_expr(a)?);
        }
        // Extra arguments (beyond the first) are written into the next
        // context before the send; the send instruction auto-copies the
        // result pointer, receiver and first argument (§3.5).
        for (j, av) in argvals.iter().enumerate().skip(1) {
            self.emit(Instr::three(
                Opcode::MOVE,
                Operand::Next(2 + j as u8),
                av.op,
                av.op,
            ))?;
        }
        let op = self.analysis.selector(selector);

        // Store instructions have inverted roles (§3.4): `a at: b put: c`
        // reads the value from A. The value also sits in next-context slot 3
        // (written above), so a *defined* at:put: override receives it as
        // its second parameter and its returned value lands back in A.
        if op == Opcode::ATPUT || op == Opcode::RAWATPUT {
            if argvals.len() != 2 {
                return Err(CompileError::sem(format!(
                    "{selector} expects exactly two arguments"
                )));
            }
            let made_copy = matches!(argvals[1].op, Operand::Const(_));
            let value = self.materialize(argvals[1])?;
            self.emit(Instr::three(op, slot_of(value.op)?, rv.op, argvals[0].op))?;
            // Free everything in reverse order, then hand the value back in
            // a fresh slot (the store already happened; the copy reads the
            // untouched value slot).
            let value_op = value.op;
            if made_copy {
                self.free(value);
            }
            self.free(argvals[1]);
            self.free(argvals[0]);
            self.free(rv);
            let dest = self.alloc_scratch()?;
            self.emit(Instr::three(
                Opcode::MOVE,
                Operand::Cur(dest),
                value_op,
                value_op,
            ))?;
            return Ok(Val {
                op: Operand::Cur(dest),
                owned: Some(dest),
            });
        }

        let dest = {
            // Free in reverse order before allocating the destination so
            // deep expressions reuse slots.
            for av in argvals.iter().rev() {
                self.free(*av);
            }
            self.free(rv);
            self.alloc_scratch()?
        };
        let first_arg = argvals.first().map(|v| v.op).unwrap_or(rv.op);
        self.emit(Instr::three(op, Operand::Cur(dest), rv.op, first_arg))?;
        Ok(Val {
            op: Operand::Cur(dest),
            owned: Some(dest),
        })
    }

    fn gen_new(&mut self, class_name: &str, size: Option<&Expr>) -> Result<Val, CompileError> {
        let layout = self.analysis.layout(class_name)?.clone();
        let cid = self.asm.intern_const(Word::Int(layout.id.0 as i64));
        let size_val = match size {
            None => self.const_val(Word::Int(layout.total_ivars as i64)),
            Some(e) => {
                let v = self.gen_expr(e)?;
                if layout.total_ivars == 0 {
                    v
                } else {
                    let k = self.asm.intern_const(Word::Int(layout.total_ivars as i64));
                    self.free(v);
                    let s = self.alloc_scratch()?;
                    self.emit(Instr::three(
                        Opcode::ADD,
                        Operand::Cur(s),
                        v.op,
                        Operand::Const(k),
                    ))?;
                    Val {
                        op: Operand::Cur(s),
                        owned: Some(s),
                    }
                }
            }
        };
        self.free(size_val);
        let dest = self.alloc_scratch()?;
        self.emit(Instr::three(
            Opcode::NEW,
            Operand::Cur(dest),
            Operand::Const(cid),
            size_val.op,
        ))?;
        Ok(Val {
            op: Operand::Cur(dest),
            owned: Some(dest),
        })
    }

    /// Conditionals. Inlined (default): jumps around the arms. Non-inlined
    /// (ablation A3): every block arm becomes a real block object and the
    /// chosen arm receives `value`.
    fn gen_conditional(
        &mut self,
        recv: &Expr,
        selector: &str,
        args: &[Expr],
    ) -> Result<Val, CompileError> {
        let (then_arm, else_arm): (Option<&Block>, Option<&Block>) = match selector {
            "ifTrue:" | "and:" => (args[0].as_block(), None),
            "ifFalse:" | "or:" => (None, args[0].as_block()),
            "ifTrue:ifFalse:" => (args[0].as_block(), args[1].as_block()),
            _ => unreachable!("filtered by caller"),
        };
        if (selector.contains("True") || selector == "and:") && then_arm.is_none()
            || (selector.contains("False") || selector == "or:")
                && else_arm.is_none()
                && selector != "ifTrue:"
                && selector != "and:"
        {
            return Err(CompileError::sem(format!(
                "{selector} requires literal block arguments"
            )));
        }
        let cond = self.gen_expr(recv)?;
        let cond = self.materialize(cond)?;
        let result = self.alloc_scratch()?;

        let then_label = self.asm.label();
        let end_label = self.asm.label();
        self.asm.jump_if(cond.op, then_label);
        // Else arm (condition false).
        self.gen_arm(else_arm, selector, result)?;
        self.asm.jump(end_label);
        self.asm.bind(then_label);
        // Then arm (condition true). For or:, true means the result is the
        // condition itself (true); for and:, false means false.
        match selector {
            "or:" => {
                self.emit(Instr::three(
                    Opcode::MOVE,
                    Operand::Cur(result),
                    cond.op,
                    cond.op,
                ))?;
            }
            _ => self.gen_arm(then_arm, selector, result)?,
        }
        self.asm.bind(end_label);
        // Free in stack order: result was allocated after cond.
        self.scratch_next = result;
        if let Some(owned) = cond.owned {
            self.scratch_next = owned;
        }
        // Re-allocate result at the top of the scratch stack so it is the
        // expression's (owned) value.
        let dest = self.alloc_scratch()?;
        if dest != result {
            self.emit(Instr::three(
                Opcode::MOVE,
                Operand::Cur(dest),
                Operand::Cur(result),
                Operand::Cur(result),
            ))?;
        }
        Ok(Val {
            op: Operand::Cur(dest),
            owned: Some(dest),
        })
    }

    /// Compiles one conditional arm into `result`.
    fn gen_arm(
        &mut self,
        arm: Option<&Block>,
        selector: &str,
        result: u8,
    ) -> Result<(), CompileError> {
        match arm {
            None => {
                // Missing arm yields nil; and:/or: yield the boolean.
                let w = match selector {
                    "and:" => Word::from(false),
                    _ => Word::Atom(AtomId(2)),
                };
                let v = self.const_val(w);
                self.emit(Instr::three(Opcode::MOVE, Operand::Cur(result), v.op, v.op))?;
            }
            Some(block) => {
                // Arms containing `^` must stay inline even in the A3
                // ablation (a real block would need non-local return), and
                // conditionals already inside a block body stay inline too
                // (blocks do not nest in this dialect).
                if self.options.inline_control_flow
                    || self.outer.is_some()
                    || block_has_return(block)
                {
                    let v = self.gen_inline_block(block, &[])?;
                    self.emit(Instr::three(Opcode::MOVE, Operand::Cur(result), v.op, v.op))?;
                    self.free(v);
                } else {
                    // A3: real block object, sent `value`.
                    let b = self.gen_block_object(block)?;
                    let dest = self.alloc_scratch()?;
                    let op = self.analysis.selector("value");
                    self.emit(Instr::three(op, Operand::Cur(dest), b.op, b.op))?;
                    self.emit(Instr::three(
                        Opcode::MOVE,
                        Operand::Cur(result),
                        Operand::Cur(dest),
                        Operand::Cur(dest),
                    ))?;
                    self.scratch_next = dest;
                    self.free(b);
                }
            }
        }
        Ok(())
    }

    /// Compiles a block body inline (control-flow blocks): parameters bind
    /// to fresh scratch slots the caller must have assigned.
    fn gen_inline_block(&mut self, block: &Block, params: &[u8]) -> Result<Val, CompileError> {
        debug_assert_eq!(block.params.len(), params.len());
        let saved: Vec<(String, Option<Binding>)> = block
            .params
            .iter()
            .zip(params)
            .map(|(name, slot)| {
                let old = self.names.insert(name.clone(), Binding::Slot(*slot));
                (name.clone(), old)
            })
            .collect();
        let mut last: Option<Val> = None;
        let n = block.body.len();
        for (i, stmt) in block.body.iter().enumerate() {
            match stmt {
                Stmt::Return(e) => {
                    // ^ inside an inlined block returns from the enclosing
                    // method — correct Smalltalk semantics for inlined code.
                    let v = self.gen_expr(e)?;
                    self.emit_return(v)?;
                    self.free(v);
                }
                Stmt::Expr(e) => {
                    let v = self.gen_expr(e)?;
                    if i == n - 1 {
                        last = Some(v);
                    } else {
                        self.free(v);
                    }
                }
            }
        }
        for (name, old) in saved {
            match old {
                Some(b) => {
                    self.names.insert(name, b);
                }
                None => {
                    self.names.remove(&name);
                }
            }
        }
        Ok(last.unwrap_or(Val {
            op: Operand::Cur(1),
            owned: None,
        }))
    }

    fn gen_while(&mut self, cond: &Block, body: &Block) -> Result<Val, CompileError> {
        let top = self.asm.label();
        let body_label = self.asm.label();
        let end = self.asm.label();
        self.asm.bind(top);
        let c = self.gen_inline_block(cond, &[])?;
        let c = self.materialize(c)?;
        self.asm.jump_if(c.op, body_label);
        self.free(c);
        self.asm.jump(end);
        self.asm.bind(body_label);
        let v = self.gen_inline_block(body, &[])?;
        self.free(v);
        self.asm.jump(top);
        self.asm.bind(end);
        Ok(self.const_val(Word::Atom(AtomId(2))))
    }

    fn gen_times_repeat(&mut self, count: &Expr, body: &Block) -> Result<Val, CompileError> {
        let n = self.gen_expr(count)?;
        let n = self.materialize(n)?;
        let i = self.alloc_scratch()?;
        let k0 = self.asm.intern_const(Word::Int(0));
        let k1 = self.asm.intern_const(Word::Int(1));
        self.emit(Instr::three(
            Opcode::MOVE,
            Operand::Cur(i),
            Operand::Const(k0),
            Operand::Const(k0),
        ))?;
        let top = self.asm.label();
        let body_label = self.asm.label();
        let end = self.asm.label();
        self.asm.bind(top);
        let c = self.alloc_scratch()?;
        self.emit(Instr::three(
            Opcode::LT,
            Operand::Cur(c),
            Operand::Cur(i),
            n.op,
        ))?;
        self.asm.jump_if(Operand::Cur(c), body_label);
        self.scratch_next = c;
        self.asm.jump(end);
        self.asm.bind(body_label);
        let v = self.gen_inline_block(body, &[])?;
        self.free(v);
        self.emit(Instr::three(
            Opcode::ADD,
            Operand::Cur(i),
            Operand::Cur(i),
            Operand::Const(k1),
        ))?;
        self.asm.jump(top);
        self.asm.bind(end);
        self.scratch_next = i;
        self.free(n);
        Ok(self.const_val(Word::Atom(AtomId(2))))
    }

    fn gen_to_do(&mut self, from: &Expr, to: &Expr, body: &Block) -> Result<Val, CompileError> {
        if body.params.len() != 1 {
            return Err(CompileError::sem(
                "to:do: block takes exactly one parameter",
            ));
        }
        let k1 = self.asm.intern_const(Word::Int(1));
        let fv = self.gen_expr(from)?;
        let fv = self.materialize(fv)?;
        let limit = self.gen_expr(to)?;
        let limit = self.materialize(limit)?;
        // Loop variable: a dedicated scratch slot, bound to the block param.
        let i = self.alloc_scratch()?;
        self.emit(Instr::three(Opcode::MOVE, Operand::Cur(i), fv.op, fv.op))?;
        let top = self.asm.label();
        let body_label = self.asm.label();
        let end = self.asm.label();
        self.asm.bind(top);
        let c = self.alloc_scratch()?;
        self.emit(Instr::three(
            Opcode::LE,
            Operand::Cur(c),
            Operand::Cur(i),
            limit.op,
        ))?;
        self.asm.jump_if(Operand::Cur(c), body_label);
        self.scratch_next = c;
        self.asm.jump(end);
        self.asm.bind(body_label);
        let v = self.gen_inline_block(body, &[i])?;
        self.free(v);
        self.emit(Instr::three(
            Opcode::ADD,
            Operand::Cur(i),
            Operand::Cur(i),
            Operand::Const(k1),
        ))?;
        self.asm.jump(top);
        self.asm.bind(end);
        // Free i, limit, fv in reverse order.
        self.scratch_next = i;
        self.free(limit);
        self.free(fv);
        Ok(self.const_val(Word::Atom(AtomId(2))))
    }

    /// Compiles a block literal into a real block object: a fresh class
    /// with ivars `[home, outerSelf]` and a `value…` method holding the
    /// body. Creating the object stores the home context pointer into a
    /// heap object — the §2.3 non-LIFO escape.
    fn gen_block_object(&mut self, block: &Block) -> Result<Val, CompileError> {
        if self.outer.is_some() {
            return Err(CompileError::sem(
                "nested non-inlined blocks are not supported",
            ));
        }
        *self.block_counter += 1;
        let class_name = format!("Block{}", self.block_counter);
        let class_id = self
            .analysis
            .classes
            .define(&class_name, Some(com_obj::ClassTable::OBJECT), 2)
            .map_err(CompileError::sem)?;
        self.analysis.layouts.insert(
            class_name.clone(),
            crate::analysis::ClassLayout {
                id: class_id,
                ivars: HashMap::from([("home".into(), 0u16), ("outerSelf".into(), 1u16)]),
                total_ivars: 2,
            },
        );
        let value_sel = match block.params.len() {
            0 => "value".to_string(),
            n => "value:".repeat(n),
        };
        // The block body becomes a method of the block class.
        let method = MethodDef {
            selector: value_sel,
            params: block.params.clone(),
            temps: vec![],
            body: block.body.clone(),
        };
        let env = OuterEnv {
            slots: self
                .names
                .iter()
                .filter_map(|(k, v)| match v {
                    Binding::Slot(s) => Some((k.clone(), *s)),
                    _ => None,
                })
                .collect(),
            class_name: self.class_name.clone(),
        };
        self.blocks_out
            .push((class_name, class_id, method, Some(env)));

        // Construction: obj := NEW(class, 2); obj[0] := &arg0 (home);
        // obj[1] := self.
        let cid = self.asm.intern_const(Word::Int(class_id.0 as i64));
        let k2 = self.asm.intern_const(Word::Int(2));
        let obj = self.alloc_scratch()?;
        self.emit(Instr::three(
            Opcode::NEW,
            Operand::Cur(obj),
            Operand::Const(cid),
            Operand::Const(k2),
        ))?;
        let home = self.alloc_scratch()?;
        // movea: effective address of operand B — slot 0 (arg0), so the
        // home pointer indexes operand slots directly.
        self.emit(Instr::three(
            Opcode::MOVEA,
            Operand::Cur(home),
            Operand::Cur(0),
            Operand::Cur(0),
        ))?;
        let k0 = self.asm.intern_const(Word::Int(0));
        let k1 = self.asm.intern_const(Word::Int(1));
        self.emit(Instr::three(
            Opcode::RAWATPUT,
            Operand::Cur(home),
            Operand::Cur(obj),
            Operand::Const(k0),
        ))?;
        self.emit(Instr::three(
            Opcode::RAWATPUT,
            Operand::Cur(1),
            Operand::Cur(obj),
            Operand::Const(k1),
        ))?;
        self.scratch_next = home;
        Ok(Val {
            op: Operand::Cur(obj),
            owned: Some(obj),
        })
    }
}

/// Whether a block body contains a method return (`^`) anywhere, including
/// inside nested inlinable blocks.
fn block_has_return(b: &Block) -> bool {
    fn stmt_has(s: &Stmt) -> bool {
        match s {
            Stmt::Return(_) => true,
            Stmt::Expr(e) => expr_has(e),
        }
    }
    fn expr_has(e: &Expr) -> bool {
        match e {
            Expr::Assign(_, v) => expr_has(v),
            Expr::Send { recv, args, .. } => expr_has(recv) || args.iter().any(expr_has),
            Expr::Block(b) => b.body.iter().any(stmt_has),
            _ => false,
        }
    }
    b.body.iter().any(stmt_has)
}

fn slot_of(op: Operand) -> Result<Operand, CompileError> {
    match op {
        Operand::Cur(_) | Operand::Next(_) => Ok(op),
        Operand::Const(_) => Err(CompileError::sem(
            "internal: expected a materialized slot operand",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use com_core::{Machine, MachineConfig};

    fn run_com(src: &str, selector: &str, recv: Word, args: &[Word]) -> Word {
        let program = parse(src).unwrap();
        let image = compile_com_program(&program, CompileOptions::default()).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image).unwrap();
        m.send(selector, recv, args, 5_000_000).unwrap().result
    }

    #[test]
    fn arithmetic_method() {
        let src = "class SmallInteger method double ^self + self end end";
        assert_eq!(run_com(src, "double", Word::Int(21), &[]), Word::Int(42));
    }

    #[test]
    fn conditionals_and_comparison() {
        let src = r#"
            class SmallInteger
              method mymax: other
                self > other ifTrue: [ ^self ] ifFalse: [ ^other ]
              end
            end
        "#;
        assert_eq!(
            run_com(src, "mymax:", Word::Int(3), &[Word::Int(9)]),
            Word::Int(9)
        );
        assert_eq!(
            run_com(src, "mymax:", Word::Int(12), &[Word::Int(9)]),
            Word::Int(12)
        );
    }

    #[test]
    fn while_loop_with_temps() {
        let src = r#"
            class SmallInteger
              method sumto | acc i |
                acc := 0. i := 1.
                [ i <= self ] whileTrue: [ acc := acc + i. i := i + 1 ].
                ^acc
              end
            end
        "#;
        assert_eq!(run_com(src, "sumto", Word::Int(100), &[]), Word::Int(5050));
    }

    #[test]
    fn objects_ivars_and_keyword_sends() {
        let src = r#"
            class Point extends Object
              vars x y
              method setX: ax y: ay x := ax. y := ay. ^self end
              method x ^x end
              method y ^y end
              method manhattan: other
                ^(self x - other x) abs + (self y - other y) abs
              end
            end
            class SmallInteger
              method abs self < 0 ifTrue: [ ^0 - self ]. ^self end
            end
            class Driver extends Object
              method go | a b |
                a := Point new setX: 3 y: 4.
                b := Point new setX: 7 y: 1.
                ^a manhattan: b
              end
            end
        "#;
        let program = parse(src).unwrap();
        let image = compile_com_program(&program, CompileOptions::default()).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image).unwrap();
        let driver_class = image.classes.by_name("Driver").unwrap();
        let driver = m
            .space_mut()
            .create(
                com_mem::TeamId(0),
                driver_class,
                1,
                com_mem::AllocKind::Object,
            )
            .unwrap();
        let out = m.send("go", Word::Ptr(driver), &[], 5_000_000).unwrap();
        assert_eq!(out.result, Word::Int(7));
    }

    #[test]
    fn to_do_loops() {
        let src = r#"
            class SmallInteger
              method squaresum | acc |
                acc := 0.
                1 to: self do: [ :i | acc := acc + (i * i) ].
                ^acc
              end
            end
        "#;
        assert_eq!(
            run_com(src, "squaresum", Word::Int(10), &[]),
            Word::Int(385)
        );
    }

    #[test]
    fn real_blocks_capture_and_mutate_outer_variables() {
        let src = r#"
            class SmallInteger
              method viaBlock | acc blk |
                acc := 10.
                blk := [ :d | acc := acc + d ].
                blk value: 5.
                blk value: 27.
                ^acc
              end
            end
        "#;
        assert_eq!(run_com(src, "viaBlock", Word::Int(0), &[]), Word::Int(42));
    }

    #[test]
    fn polymorphic_dispatch_across_classes() {
        let src = r#"
            class Shape extends Object
              method area ^0 end
              method describe ^self area end
            end
            class Square extends Shape vars side
              method side: s side := s. ^self end
              method area ^side * side end
            end
        "#;
        let program = parse(src).unwrap();
        let image = compile_com_program(&program, CompileOptions::default()).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image).unwrap();
        let sq = image.classes.by_name("Square").unwrap();
        let obj = m
            .space_mut()
            .create(com_mem::TeamId(0), sq, 1, com_mem::AllocKind::Object)
            .unwrap();
        m.send("side:", Word::Ptr(obj), &[Word::Int(6)], 1_000_000)
            .unwrap();
        let out = m.send("describe", Word::Ptr(obj), &[], 1_000_000).unwrap();
        assert_eq!(out.result, Word::Int(36));
    }

    #[test]
    fn noninlined_conditionals_still_compute() {
        let src = "class SmallInteger method pick ^self > 0 ifTrue: [ 1 ] ifFalse: [ 2 ] end end";
        let program = parse(src).unwrap();
        let opts = CompileOptions {
            inline_control_flow: false,
            with_stdlib: false,
        };
        let image = compile_com_program(&program, opts).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image).unwrap();
        assert_eq!(
            m.send("pick", Word::Int(5), &[], 1_000_000).unwrap().result,
            Word::Int(1)
        );
        let mut m2 = Machine::new(MachineConfig::default());
        m2.load(&image).unwrap();
        assert_eq!(
            m2.send("pick", Word::Int(-5), &[], 1_000_000)
                .unwrap()
                .result,
            Word::Int(2)
        );
        // Real blocks were created: home contexts escaped to the GC.
        assert!(m.stats().contexts_left_to_gc > 0);
    }
}
