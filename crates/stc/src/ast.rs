//! Abstract syntax of the COM Smalltalk dialect.

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Atom literal `#foo`.
    Atom(String),
    /// `true`.
    True,
    /// `false`.
    False,
    /// `nil`.
    Nil,
    /// `self`.
    SelfRef,
    /// A variable reference (parameter, temp, instance variable or block
    /// parameter — resolved during code generation).
    Var(String),
    /// A class reference (capitalised identifier naming a class): receiver
    /// of `new` / `new:`.
    ClassRef(String),
    /// Assignment; yields the assigned value.
    Assign(String, Box<Expr>),
    /// A message send.
    Send {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Full selector (`at:put:` style for keywords).
        selector: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A block literal.
    Block(Block),
}

/// A block literal `[ :x | stmts ]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements; the value of the last expression is the block's
    /// value (or `nil` for an empty block).
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression evaluated for effect.
    Expr(Expr),
    /// `^expr` — method return.
    Return(Expr),
}

/// A method definition.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    /// Full selector.
    pub selector: String,
    /// Parameter names (one per keyword part; one for a binary selector;
    /// none for unary).
    pub params: Vec<String>,
    /// Declared temporaries (`| a b |`).
    pub temps: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A class definition (or extension of an existing class when `extends`
/// is absent and the name is already known).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Superclass name (`Object` when omitted on a fresh class; `None`
    /// also marks extensions of predefined classes such as
    /// `SmallInteger`).
    pub superclass: Option<String>,
    /// Instance variable names (empty for extensions).
    pub ivars: Vec<String>,
    /// Methods.
    pub methods: Vec<MethodDef>,
}

/// A whole program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Class definitions in source order.
    pub classes: Vec<ClassDef>,
}

impl Expr {
    /// Whether this expression is a block literal (inlinable control-flow
    /// argument).
    pub fn as_block(&self) -> Option<&Block> {
        match self {
            Expr::Block(b) => Some(b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_accessor() {
        let b = Expr::Block(Block {
            params: vec![],
            body: vec![],
        });
        assert!(b.as_block().is_some());
        assert!(Expr::Nil.as_block().is_none());
    }
}
