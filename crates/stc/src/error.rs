//! Compiler errors.

/// A compilation error with position information where available.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical error.
    Lex {
        /// Byte offset in the source.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Byte offset in the source.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// Semantic error (unknown names, arity problems, capacity limits).
    Semantic(String),
}

impl CompileError {
    pub(crate) fn sem(msg: impl Into<String>) -> Self {
        CompileError::Semantic(msg.into())
    }
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::Lex { at, message } => write!(f, "lex error at byte {at}: {message}"),
            CompileError::Parse { at, message } => {
                write!(f, "parse error at byte {at}: {message}")
            }
            CompileError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = CompileError::Parse {
            at: 42,
            message: "expected end".into(),
        };
        assert!(e.to_string().contains("42"));
    }
}
