//! Differential testing: randomly generated arithmetic/control programs
//! must produce identical results on the COM (three-address) and the Fith
//! (stack) machine — the two backends cross-validate each other and both
//! machines underneath.

use com_core::{Machine, MachineConfig};
use com_fith::FithMachine;
use com_mem::Word;
use com_stc::{compile_com, compile_fith, CompileOptions};
use proptest::prelude::*;

/// A tiny expression AST we can render to COM Smalltalk source.
#[derive(Debug, Clone)]
enum E {
    N(i8),
    SelfRef,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    IfPos(Box<E>, Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-9i8..=9).prop_map(E::N), Just(E::SelfRef)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mod(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, f)| E::IfPos(c.into(), t.into(), f.into())),
        ]
    })
}

/// Renders to source. Modulo guards against zero divisors by adding a
/// constant offset inside `(… abs + 1)`.
fn render(e: &E) -> String {
    match e {
        E::N(n) => {
            if *n < 0 {
                format!("(0 - {})", -(*n as i64))
            } else {
                format!("{n}")
            }
        }
        E::SelfRef => "self".to_string(),
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("(({} \\\\ 997) * ({} \\\\ 997))", render(a), render(b)),
        E::Mod(a, b) => format!("({} \\\\ (({}) abs + 1))", render(a), render(b)),
        E::Min(a, b) => format!("({} min: {})", render(a), render(b)),
        E::IfPos(c, t, f) => format!(
            "(({}) > 0 ifTrue: [ {} ] ifFalse: [ {} ])",
            render(c),
            render(t),
            render(f)
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// COM and Fith agree on randomly generated expression programs.
    #[test]
    fn backends_agree_on_random_expressions(e in arb_expr(), recv in -50i64..50) {
        let src = format!(
            "class SmallInteger method probe ^{} end end",
            render(&e)
        );
        let opts = CompileOptions::default();
        let com_image = compile_com(&src, opts).expect("COM compiles");
        let fith_image = compile_fith(&src, opts).expect("Fith compiles");

        let mut m = Machine::new(MachineConfig::default());
        m.load(&com_image).expect("loads");
        let com = m.send("probe", Word::Int(recv), &[], 5_000_000);

        let mut f = FithMachine::new(&fith_image);
        let fith = f.send(&fith_image, "probe", Word::Int(recv), &[], 5_000_000);

        match (com, fith) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.result, b.result, "src: {}", src),
            // Both may trap (e.g. overflow-free here, but keep symmetric).
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?} (src: {src})"),
        }
    }

    /// The ablated COM configurations agree with the default on the same
    /// random programs (machine invariance under cache/ITLB geometry).
    #[test]
    fn com_configs_agree_on_random_expressions(e in arb_expr(), recv in -20i64..20) {
        let src = format!(
            "class SmallInteger method probe ^{} end end",
            render(&e)
        );
        let image = compile_com(&src, CompileOptions::default()).expect("compiles");
        let mut results = Vec::new();
        for cfg in [
            MachineConfig::default(),
            MachineConfig::default().without_itlb(),
            MachineConfig::default().without_context_cache(),
            MachineConfig::default().with_ctx_blocks(4),
        ] {
            let mut m = Machine::new(cfg);
            m.load(&image).expect("loads");
            results.push(m.send("probe", Word::Int(recv), &[], 5_000_000).map(|r| r.result));
        }
        for w in results.windows(2) {
            match (&w[0], &w[1]) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "src: {}", src),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "config divergence: {a:?} vs {b:?}"),
            }
        }
    }
}
