//! Instruction traces and cache replay (§5 of the paper).
//!
//! "Traces of large Fith programs were produced by instrumenting the Fith
//! interpreter … to record for each instruction interpreted: the address of
//! the instruction, the opcode, and the type of object on the top of the
//! stack. … For each trace, the instruction cache hit ratio and ITLB hit
//! ratio was recorded for several cache sizes and associativities. A warmup
//! trace was run before the measurement trace to avoid biasing the results."
//!
//! This crate holds the trace record type, the warmup/measure replay, and
//! the sweep helpers the Figure 10/11 harnesses use.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use com_cache::{CacheConfig, CacheError, CacheStats, SetAssocCache};
use com_mem::ClassId;

/// One traced instruction: exactly the three fields the paper records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// The instruction's address.
    pub addr: u64,
    /// The opcode executed.
    pub opcode: u16,
    /// The class of the object on top of the stack (the receiver-side
    /// datatype the ITLB keys on).
    pub tos_class: ClassId,
}

/// An instruction trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Concatenates another trace onto this one.
    pub fn extend(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

/// Replays `keys` through a fresh cache of `config`, treating the first
/// `warmup` accesses as warmup (counters reset at the boundary, §5).
///
/// Returns the measurement-phase statistics.
///
/// # Errors
///
/// Propagates [`CacheError`] from cache construction.
pub fn replay_keys<K, I>(
    config: CacheConfig,
    keys: I,
    warmup: usize,
) -> Result<CacheStats, CacheError>
where
    K: std::hash::Hash + Eq + Clone,
    I: IntoIterator<Item = K>,
{
    let mut cache: SetAssocCache<K, ()> = SetAssocCache::new(config);
    for (i, k) in keys.into_iter().enumerate() {
        if i == warmup {
            cache.reset_stats();
        }
        if cache.lookup(&k).is_none() {
            cache.fill(k, ());
        }
    }
    Ok(cache.stats())
}

/// ITLB hit ratio for a trace: keys are (opcode, top-of-stack class).
///
/// # Errors
///
/// Propagates [`CacheError`] for bad geometry.
pub fn itlb_hit_ratio(
    trace: &Trace,
    entries: usize,
    ways: usize,
    warmup_fraction: f64,
) -> Result<Option<f64>, CacheError> {
    let cfg = CacheConfig::new(entries, ways)?;
    let warmup = (trace.len() as f64 * warmup_fraction) as usize;
    let stats = replay_keys(
        cfg,
        trace.events().iter().map(|e| (e.opcode, e.tos_class)),
        warmup,
    )?;
    Ok(stats.hit_ratio())
}

/// Instruction cache hit ratio for a trace: keys are instruction addresses.
///
/// # Errors
///
/// Propagates [`CacheError`] for bad geometry.
pub fn icache_hit_ratio(
    trace: &Trace,
    entries: usize,
    ways: usize,
    warmup_fraction: f64,
) -> Result<Option<f64>, CacheError> {
    let cfg = CacheConfig::new(entries, ways)?;
    let warmup = (trace.len() as f64 * warmup_fraction) as usize;
    let stats = replay_keys(cfg, trace.events().iter().map(|e| e.addr), warmup)?;
    Ok(stats.hit_ratio())
}

/// One row of a Figure-10/11-style sweep: cache size, per-associativity hit
/// ratios.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Total cache entries.
    pub entries: usize,
    /// `(ways, hit_ratio)` pairs.
    pub ratios: Vec<(usize, Option<f64>)>,
}

/// Sweeps cache sizes × associativities over a trace with the given key
/// extraction, reproducing the §5 methodology.
///
/// # Errors
///
/// Propagates [`CacheError`] when `ways` does not divide a size.
pub fn sweep<K: std::hash::Hash + Eq + Clone>(
    trace: &Trace,
    sizes: &[usize],
    ways_list: &[usize],
    warmup_fraction: f64,
    key: impl Fn(&TraceEvent) -> K,
) -> Result<Vec<SweepRow>, CacheError> {
    let warmup = (trace.len() as f64 * warmup_fraction) as usize;
    let mut rows = Vec::new();
    for &entries in sizes {
        let mut ratios = Vec::new();
        for &ways in ways_list {
            if entries % ways != 0 || ways > entries {
                ratios.push((ways, None));
                continue;
            }
            let cfg = CacheConfig::new(entries, ways)?;
            let stats = replay_keys(cfg, trace.events().iter().map(&key), warmup)?;
            ratios.push((ways, stats.hit_ratio()));
        }
        rows.push(SweepRow { entries, ratios });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(addr: u64, opcode: u16, class: u16) -> TraceEvent {
        TraceEvent {
            addr,
            opcode,
            tos_class: ClassId(class),
        }
    }

    #[test]
    fn replay_counts_only_after_warmup() {
        // 4 distinct keys repeated: with warmup covering the first pass,
        // measurement sees only hits.
        let keys: Vec<u64> = (0..4).chain(0..4).chain(0..4).collect();
        let cfg = CacheConfig::new(8, 2).unwrap();
        let stats = replay_keys(cfg, keys, 4).unwrap();
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hits, 8);
    }

    #[test]
    fn itlb_ratio_improves_with_size() {
        // 64 distinct (opcode, class) pairs cycled repeatedly.
        let mut t = Trace::new();
        for rep in 0..50 {
            for i in 0..64u16 {
                t.record(ev(rep * 64 + i as u64, i, i % 8));
            }
        }
        // Cyclic reuse is LRU's adversarial case: sets holding more keys
        // than ways thrash. Capacity must still help monotonically, over-
        // provisioned caches must do well, and a fully associative cache
        // with capacity >= working set must be perfect after warmup.
        let small = itlb_hit_ratio(&t, 8, 2, 0.2).unwrap().unwrap();
        let large = itlb_hit_ratio(&t, 512, 2, 0.2).unwrap().unwrap();
        let full = itlb_hit_ratio(&t, 64, 64, 0.2).unwrap().unwrap();
        assert!(large > small, "large {large} <= small {small}");
        assert!(large > 0.90, "8x headroom absorbs hash collisions: {large}");
        assert!(
            (full - 1.0).abs() < 1e-12,
            "fully associative 64 holds all 64 keys: {full}"
        );
    }

    #[test]
    fn icache_keys_on_addresses() {
        let mut t = Trace::new();
        // A tight loop: 16 addresses repeated.
        for _ in 0..100 {
            for a in 0..16u64 {
                t.record(ev(a, 0, 1));
            }
        }
        let r = icache_hit_ratio(&t, 64, 2, 0.1).unwrap().unwrap();
        assert!(r > 0.99);
    }

    #[test]
    fn sweep_produces_monotone_rows() {
        let mut t = Trace::new();
        for rep in 0..20 {
            for i in 0..32u16 {
                t.record(ev(i as u64 * 7 + rep, i, i % 4));
            }
        }
        let rows = sweep(&t, &[8, 32, 128], &[1, 2], 0.2, |e| (e.opcode, e.tos_class)).unwrap();
        assert_eq!(rows.len(), 3);
        let r8 = rows[0].ratios[1].1.unwrap();
        let r128 = rows[2].ratios[1].1.unwrap();
        assert!(r128 >= r8);
    }

    #[test]
    fn trace_collects_and_extends() {
        let mut a: Trace = (0..5).map(|i| ev(i, 0, 0)).collect();
        let b: Trace = (5..8).map(|i| ev(i, 0, 0)).collect();
        a.extend(&b);
        assert_eq!(a.len(), 8);
        assert!(!a.is_empty());
    }
}
