//! Benchmark workloads: the reproduction's equivalent of the paper's
//! "traces of large Fith programs" (§5).
//!
//! Each workload is a COM Smalltalk program whose entry point is a method
//! on `SmallInteger` (the receiver is the problem size), with a known
//! expected answer so every run is self-checking. Workloads marked
//! [`Workload::com_only`] use real block objects and therefore run only on
//! the COM backend (the Fith stack backend supports inlinable blocks only).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use com_core::{MachineConfig, MachineError, RunResult};
use com_fith::{FithMachine, FithResult};
use com_mem::Word;
use com_stc::{compile_fith, CompileOptions};
use com_trace::Trace;
use com_vm::{Session, Vm, VmError};

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name (report rows, bench ids).
    pub name: &'static str,
    /// What the workload exercises.
    pub description: &'static str,
    /// Program source (stdlib is prepended at compile time).
    pub source: &'static str,
    /// Entry selector (a method on `SmallInteger`).
    pub entry: &'static str,
    /// Receiver: the problem size.
    pub size: i64,
    /// Expected integer result (self-check).
    pub expected: i64,
    /// Uses real block objects — COM backend only.
    pub com_only: bool,
}

/// `sort` — the polymorphic quicksort of the paper's introduction: one
/// routine sorting a mixed array of integers and floats through late-bound
/// `<`.
pub const SORT: Workload = Workload {
    name: "sort",
    description: "polymorphic quicksort over mixed ints and floats",
    source: r#"
class SmallInteger
  method sortBench | a seed |
    a := self newArray.
    seed := 12345.
    1 to: self do: [ :i |
      seed := (seed * 1309 + 13849) \\ 65536.
      i even
        ifTrue: [ a at: i put: seed ]
        ifFalse: [ a at: i put: seed * 1.0 ] ].
    a sort.
    a isSorted ifTrue: [ ^1 ]. ^0
  end
end
"#,
    entry: "sortBench",
    size: 220,
    expected: 1,
    com_only: false,
};

/// `trees` — binary search tree build + traversal: allocation pressure,
/// deep recursion, pointer-chasing.
pub const TREES: Workload = Workload {
    name: "trees",
    description: "binary tree insertion and traversal",
    source: r#"
class TreeNode extends Object
  vars key left right
  method setKey: k key := k. left := 0. right := 0. ^self end
  method key ^key end
  method insert: k
    k < key
      ifTrue: [ left == 0
          ifTrue: [ left := TreeNode new setKey: k ]
          ifFalse: [ left insert: k ] ]
      ifFalse: [ right == 0
          ifTrue: [ right := TreeNode new setKey: k ]
          ifFalse: [ right insert: k ] ].
    ^self
  end
  method total | t |
    t := key.
    (left == 0) not ifTrue: [ t := t + left total ].
    (right == 0) not ifTrue: [ t := t + right total ].
    ^t
  end
  method depth | l r |
    l := 1. r := 1.
    (left == 0) not ifTrue: [ l := 1 + left depth ].
    (right == 0) not ifTrue: [ r := 1 + right depth ].
    ^l max: r
  end
end
class SmallInteger
  method treeBench | root seed total |
    seed := 7.
    root := TreeNode new setKey: 32768.
    total := 32768.
    1 to: self do: [ :i |
      seed := (seed * 1309 + 13849) \\ 65536.
      root insert: seed.
      total := total + seed ].
    (root total = total) ifTrue: [ ^root depth ]. ^0 - 1
  end
end
"#,
    entry: "treeBench",
    size: 230,
    expected: 14,
    com_only: false,
};

/// `dispatch` — megamorphic sends: eight shape classes answering the same
/// selectors, stressing the ITLB exactly where late binding is priced.
pub const DISPATCH: Workload = Workload {
    name: "dispatch",
    description: "megamorphic dispatch across eight classes",
    source: r#"
class Shape extends Object
  method area ^0 end
  method weight ^1 end
end
class Sq extends Shape vars s
  method s: v s := v. ^self end
  method area ^s * s end
end
class Rect extends Shape vars w h
  method w: a h: b w := a. h := b. ^self end
  method area ^w * h end
end
class Tri extends Shape vars b h
  method b: a h: c b := a. h := c. ^self end
  method area ^(b * h) / 2 end
end
class Circ extends Shape vars r
  method r: v r := v. ^self end
  method area ^(r * r * 355) / 113 end
end
class Line extends Shape
  method area ^0 end
  method weight ^2 end
end
class Dot extends Shape
  method area ^1 end
end
class Hex extends Shape vars s
  method s: v s := v. ^self end
  method area ^(s * s * 26) / 10 end
end
class SmallInteger
  method dispatchBench | shapes acc k |
    shapes := 8 newArray.
    shapes at: 1 put: (Sq new s: 3).
    shapes at: 2 put: (Rect new w: 4 h: 5).
    shapes at: 3 put: (Tri new b: 6 h: 7).
    shapes at: 4 put: (Circ new r: 2).
    shapes at: 5 put: Line new.
    shapes at: 6 put: Dot new.
    shapes at: 7 put: (Hex new s: 3).
    shapes at: 8 put: Shape new.
    acc := 0.
    1 to: self do: [ :i |
      k := (i \\ 8) + 1.
      acc := acc + (shapes at: k) area + (shapes at: k) weight ].
    ^acc
  end
end
"#,
    entry: "dispatchBench",
    size: 600,
    expected: 7125,
    com_only: false,
};

/// `arith` — numeric kernel: mixed integer/float arithmetic, gcd chains,
/// bit-field work; primitive-dominated instruction mix.
pub const ARITH: Workload = Workload {
    name: "arith",
    description: "mixed-mode arithmetic and bit-field kernel",
    source: r#"
class SmallInteger
  method arithBench | acc f g |
    acc := 0. f := 1.5.
    1 to: self do: [ :i |
      acc := acc + (i * i \\ 97).
      acc := acc bitXor: (i shift: 3).
      f := f * 1.000001.
      g := i gcd: 1071.
      acc := acc + g.
      (f > 2.0) ifTrue: [ f := f / 2.0 ] ].
    ^acc \\ 1000003
  end
end
"#,
    entry: "arithBench",
    size: 500,
    expected: 31428,
    com_only: false,
};

/// `collections` — OrderedCollection churn: repeated `add:` forcing
/// geometric growth through the §2.2 `rawGrow:` aliasing path.
pub const COLLECTIONS: Workload = Workload {
    name: "collections",
    description: "growable collection churn (floating point address growth)",
    source: r#"
class SmallInteger
  method collBench | c |
    c := OrderedCollection new init.
    1 to: self do: [ :i | c add: i * 3 ].
    c sort.
    ^c sum \\ 1000003
  end
end
"#,
    entry: "collBench",
    size: 260,
    expected: 101790,
    com_only: false,
};

/// `image` — the small-object-problem's *large* tail: a whole image as one
/// big segment, plus a box-blur pass allocating a second one (§2.2's image
/// processing motivation).
pub const IMAGE: Workload = Workload {
    name: "image",
    description: "large-segment image blur (big objects)",
    source: r#"
class SmallInteger
  method imageBench | w img out acc v p |
    w := self.
    img := (w * w) newArray.
    1 to: w * w do: [ :i | img at: i put: (i * 7 \\ 256) ].
    out := (w * w) newArray.
    out fill: 0.
    2 to: w - 1 do: [ :y |
      2 to: w - 1 do: [ :x |
        p := (y - 1) * w + x.
        v := (img at: p) + (img at: p - 1) + (img at: p + 1)
             + (img at: p - w) + (img at: p + w).
        out at: p put: v / 5 ] ].
    acc := out sum.
    ^acc \\ 1000003
  end
end
"#,
    entry: "imageBench",
    size: 28,
    expected: 85939,
    com_only: false,
};

/// `closures` — real block objects capturing and mutating their home
/// contexts: the §2.3 non-LIFO context source. COM only.
pub const CLOSURES: Workload = Workload {
    name: "closures",
    description: "escaping blocks mutating captured variables (non-LIFO contexts)",
    source: r#"
class SmallInteger
  method closureBench | acc addc mulc i |
    acc := 0.
    addc := [ :d | acc := acc + d ].
    mulc := [ :d | acc := acc * d ].
    i := 1.
    [ i <= self ] whileTrue: [
      addc value: i.
      (i \\ 7) = 0 ifTrue: [ mulc value: 2. acc := acc \\ 99991 ].
      i := i + 1 ].
    ^acc
  end
end
"#,
    entry: "closureBench",
    size: 400,
    expected: 96599,
    com_only: true,
};

/// `churn` — the generational-GC workload: a long-lived ballast array and
/// a growing survivor collection (the tenured generation) against a stream
/// of short-lived scratch arrays that die within one iteration (the
/// nursery). Under a minor-collection cadence, reclamation cost tracks the
/// per-iteration garbage; under full collections it tracks the whole live
/// heap. Self-checking closed form: for n iterations,
/// `acc = Σ i + Σ ((i mod 8)+1)`, `keep sum = Σ multiples of 10 ≤ n`, plus
/// the ballast probe `big at: n = n`.
pub const CHURN: Workload = Workload {
    name: "churn",
    description: "allocation churn against tenured ballast (generational GC)",
    source: r#"
class SmallInteger
  method churnBench | n big keep tmp acc |
    n := self.
    big := (n * 4) newArray.
    1 to: n * 4 do: [ :j | big at: j put: j ].
    keep := OrderedCollection new init.
    acc := 0.
    1 to: n do: [ :i |
      tmp := 8 newArray.
      1 to: 8 do: [ :j | tmp at: j put: i + j ].
      acc := acc + (tmp at: ((i \\ 8) + 1)).
      (i \\ 10) = 0 ifTrue: [ keep add: i ] ].
    ^acc + keep sum + (big at: n)
  end
end
"#,
    entry: "churnBench",
    size: 200,
    expected: 23300, // 20100 + 900 + 2100 + 200 (closed form above)
    com_only: false,
};

/// `dnu_proxy` — software trap dispatch: every `log:` send to the proxy
/// fails method lookup and re-dispatches through the proxy's
/// `doesNotUnderstand:` handler (which accumulates the reified
/// arguments), and one divide-by-zero routes through `SmallInteger`'s
/// `badOperands:` handler — the program runs *through* its traps to a
/// closed-form answer. COM only: the Fith backend has no software trap
/// dispatch, so its traps stay terminal.
///
/// Self-check for size n: the i-th failed `log:` returns the running sum
/// `T_i = i(i+1)/2`, so the loop accumulates `Σ T_i = n(n+1)(n+2)/6`;
/// `count` adds n; the handled divide-by-zero adds 1 000 000.
pub const DNU_PROXY: Workload = Workload {
    name: "dnu_proxy",
    description: "doesNotUnderstand:/badOperands: handlers carry the program through its traps",
    source: r#"
class Proxy extends Object
  vars count sum
  method initProxy count := 0. sum := 0. ^self end
  method count ^count end
  method doesNotUnderstand: msg
    count := count + 1.
    sum := sum + (msg rawAt: 2).
    ^sum
  end
end
class SmallInteger
  method badOperands: msg ^1000000 end
  method dnuBench | p acc |
    p := Proxy new initProxy.
    acc := 0.
    1 to: self do: [ :i | acc := acc + (p log: i) ].
    acc := acc + p count.
    acc := acc + (7 / (self - self)).
    ^acc
  end
end
"#,
    entry: "dnuBench",
    size: 60,
    expected: 1_037_880, // 60*61*62/6 + 60 + 1_000_000
    com_only: true,
};

/// `calls` — doubly recursive Fibonacci: maximal call/return density for
/// the context cache and call-cost experiments.
pub const CALLS: Workload = Workload {
    name: "calls",
    description: "doubly recursive fib (call/return density)",
    source: r#"
class SmallInteger
  method fib
    self < 2 ifTrue: [ ^self ].
    ^(self - 1) fib + (self - 2) fib
  end
end
"#,
    entry: "fib",
    size: 15,
    expected: 610,
    com_only: false,
};

/// `scheduler` — a Richards-style task scheduler: a ring of heterogeneous
/// task objects (idle, worker, handler) exchanging packets through
/// polymorphic `run:` sends; the canonical OO-machine workload shape.
pub const SCHEDULER: Workload = Workload {
    name: "scheduler",
    description: "Richards-style polymorphic task scheduler",
    source: r#"
class Packet extends Object
  vars kind datum
  method kind: k datum: d kind := k. datum := d. ^self end
  method kind ^kind end
  method datum ^datum end
end

class Task extends Object
  vars state work
  method initTask state := 0. work := 0. ^self end
  method work ^work end
  method run: p ^0 end
end

class IdleTask extends Task
  vars control
  method initIdle control := 1. ^self initTask end
  method run: p
    work := work + 1.
    control := (control * 53) \\ 79.
    ^control \\ 3
  end
end

class WorkerTask extends Task
  vars sum
  method initWorker sum := 0. ^self initTask end
  method run: p
    work := work + 1.
    sum := (sum + p datum) \\ 99991.
    ^sum \\ 3
  end
  method sum ^sum end
end

class HandlerTask extends Task
  vars queueLen
  method initHandler queueLen := 0. ^self initTask end
  method run: p
    work := work + 1.
    p kind = 1
      ifTrue: [ queueLen := queueLen + 1 ]
      ifFalse: [ queueLen := queueLen max: 1. queueLen := queueLen - 1 ].
    ^queueLen \\ 3
  end
end

class SmallInteger
  method schedBench | tasks packets t p pick seed total i |
    tasks := 6 newArray.
    tasks at: 1 put: IdleTask new initIdle.
    tasks at: 2 put: WorkerTask new initWorker.
    tasks at: 3 put: HandlerTask new initHandler.
    tasks at: 4 put: WorkerTask new initWorker.
    tasks at: 5 put: HandlerTask new initHandler.
    tasks at: 6 put: IdleTask new initIdle.
    packets := 4 newArray.
    packets at: 1 put: (Packet new kind: 1 datum: 7).
    packets at: 2 put: (Packet new kind: 2 datum: 11).
    packets at: 3 put: (Packet new kind: 1 datum: 13).
    packets at: 4 put: (Packet new kind: 2 datum: 17).
    seed := 5. i := 1.
    [ i <= self ] whileTrue: [
      seed := (seed * 1309 + 13849) \\ 65536.
      t := tasks at: (seed \\ 6) + 1.
      p := packets at: (seed \\ 4) + 1.
      pick := t run: p.
      pick = 0 ifTrue: [ t run: (packets at: 1) ].
      i := i + 1 ].
    total := 0.
    1 to: 6 do: [ :k | total := total + (tasks at: k) work ].
    ^total
  end
end
"#,
    entry: "schedBench",
    size: 300,
    expected: 475, // calibrated; both machines agree (differential test)
    com_only: false,
};

/// All workloads, in report order.
pub fn all() -> Vec<Workload> {
    vec![
        SORT,
        TREES,
        DISPATCH,
        ARITH,
        COLLECTIONS,
        IMAGE,
        CLOSURES,
        CHURN,
        DNU_PROXY,
        CALLS,
        SCHEDULER,
    ]
}

/// The workloads both backends run (for the T3 comparison).
pub fn portable() -> Vec<Workload> {
    all().into_iter().filter(|w| !w.com_only).collect()
}

/// Builds a [`Vm`] serving one workload's program — compile once, spawn
/// as many tenant sessions as the experiment needs.
///
/// # Panics
///
/// Panics if the workload fails to compile (workloads are shipped code).
pub fn vm_for(w: &Workload, config: MachineConfig, options: CompileOptions) -> Vm {
    Vm::builder()
        .source(w.source)
        .config(config)
        .options(options)
        .build()
        .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", w.name))
}

/// Runs a workload's entry send on an existing session.
///
/// # Errors
///
/// Propagates machine traps (including budget exhaustion).
pub fn run_on(w: &Workload, session: &mut Session, max_steps: u64) -> Result<RunResult, VmError> {
    session.send_raw(w.entry, Word::Int(w.size), &[], max_steps)
}

/// Starts a workload's entry send as a resumable call on an existing
/// session — the form the cooperative [`com_vm::Scheduler`] and the
/// [`com_vm::ParallelExecutor`] drain.
///
/// # Errors
///
/// Propagates [`com_vm::VmError::CallInProgress`] and allocation traps.
pub fn start_on(w: &Workload, session: &mut Session) -> Result<(), VmError> {
    session.call_start_with(w.entry, Word::Int(w.size), &[])
}

/// Compiles and runs a workload on the COM through the embedding facade,
/// returning the run and the session that performed it (statistics,
/// spaces and caches stay inspectable).
///
/// # Errors
///
/// Propagates machine errors; the self-check answer is returned for
/// callers to inspect.
///
/// # Panics
///
/// Panics if the workload fails to compile.
pub fn run_com(
    w: &Workload,
    config: MachineConfig,
    max_steps: u64,
) -> Result<(RunResult, Session), VmError> {
    run_com_with_options(w, config, CompileOptions::default(), max_steps)
}

/// Compiles and runs a workload on the COM with non-default compile
/// options (ablation A3).
///
/// # Errors
///
/// As [`run_com`].
///
/// # Panics
///
/// As [`run_com`].
pub fn run_com_with_options(
    w: &Workload,
    config: MachineConfig,
    options: CompileOptions,
    max_steps: u64,
) -> Result<(RunResult, Session), VmError> {
    let vm = vm_for(w, config, options);
    let mut session = vm.session()?;
    let out = run_on(w, &mut session, max_steps)?;
    Ok((out, session))
}

/// Compiles and runs a workload on the Fith stack machine.
///
/// # Errors
///
/// Propagates machine errors.
///
/// # Panics
///
/// Panics if the workload is COM-only or fails to compile.
pub fn run_fith(w: &Workload, max_steps: u64) -> Result<(FithResult, FithMachine), MachineError> {
    assert!(!w.com_only, "workload {} is COM-only", w.name);
    let image = compile_fith(w.source, CompileOptions::default())
        .unwrap_or_else(|e| panic!("workload {} failed to compile for fith: {e}", w.name));
    let mut m = FithMachine::new(&image);
    let out = m.send(&image, w.entry, Word::Int(w.size), &[], max_steps)?;
    Ok((out, m))
}

/// Runs a workload on the Fith machine with tracing enabled, returning the
/// trace (the §5 methodology's input).
///
/// # Errors
///
/// Propagates machine errors.
pub fn trace_fith(w: &Workload, max_steps: u64) -> Result<(Trace, FithResult), MachineError> {
    assert!(!w.com_only, "workload {} is COM-only", w.name);
    let image = compile_fith(w.source, CompileOptions::default())
        .unwrap_or_else(|e| panic!("workload {} failed to compile for fith: {e}", w.name));
    let mut m = FithMachine::new(&image);
    m.enable_trace();
    let out = m.send(&image, w.entry, Word::Int(w.size), &[], max_steps)?;
    let trace = m.take_trace().expect("tracing enabled");
    Ok((trace, out))
}

/// Default step budget generous enough for every stock workload.
pub const MAX_STEPS: u64 = 50_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_runs_on_com_and_self_checks() {
        for w in all() {
            let (out, _) = run_com(&w, MachineConfig::default(), MAX_STEPS)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert_eq!(
                out.result,
                Word::Int(w.expected),
                "{} produced wrong answer",
                w.name
            );
        }
    }

    #[test]
    fn portable_workloads_agree_between_machines() {
        for w in portable() {
            let (com, _) = run_com(&w, MachineConfig::default(), MAX_STEPS).unwrap();
            let (fith, _) = run_fith(&w, MAX_STEPS).unwrap();
            assert_eq!(com.result, fith.result, "{}: COM and Fith disagree", w.name);
        }
    }

    #[test]
    fn dnu_proxy_routes_traps_through_handlers_on_both_interpreter_loops() {
        // Threaded loop, via the facade.
        let (out, _) = run_com(&DNU_PROXY, MachineConfig::default(), MAX_STEPS).unwrap();
        assert_eq!(out.result, Word::Int(DNU_PROXY.expected));
        // Every log: send plus the divide-by-zero dispatched in software.
        assert_eq!(out.stats.soft_traps, DNU_PROXY.size as u64 + 1);
        // Reference loop: a fresh session over the same image, driven by
        // the single-step interpreter. Bit-identical or the two loops'
        // dispatch-handler behavior silently diverged.
        let vm = vm_for(
            &DNU_PROXY,
            MachineConfig::default(),
            CompileOptions::default(),
        );
        let mut s = vm.session().unwrap();
        let m = s.machine_mut();
        let sel = m.opcodes().get(DNU_PROXY.entry).unwrap();
        m.start_send(sel, Word::Int(DNU_PROXY.size), &[]).unwrap();
        let b = m.run_stepwise(MAX_STEPS).unwrap();
        assert_eq!(b.result, out.result);
        assert_eq!(
            b.stats, out.stats,
            "dnu_proxy diverged between run and run_stepwise"
        );
    }

    #[test]
    fn traces_are_substantial() {
        // The paper's longest trace was ~20k instructions; ours should be
        // in that ballpark or larger for the headline workloads.
        let (trace, _) = trace_fith(&SORT, MAX_STEPS).unwrap();
        assert!(
            trace.len() > 20_000,
            "sort trace only {} events",
            trace.len()
        );
    }
}
