use com_core::{Machine, MachineConfig};
use com_mem::Word;
use com_stc::{compile_com, CompileOptions};
fn t(src: &str, sel: &str, n: i64) {
    let opts = CompileOptions {
        inline_control_flow: false,
        with_stdlib: true,
    };
    let image = compile_com(src, opts).unwrap();
    let mut m = Machine::new(MachineConfig::default());
    m.load(&image).unwrap();
    match m.send(sel, Word::Int(n), &[], 10_000_000) {
        Ok(r) => println!("{sel}({n}) = {}", r.result),
        Err(e) => println!("{sel}({n}) ERR {e}"),
    }
}
fn main() {
    t("class SmallInteger method m1 | x | x := 0. self > 2 ifTrue: [ x := 10 ] ifFalse: [ x := 20 ]. ^x end end", "m1", 5);
    t(
        "class SmallInteger method m2 | x | x := 1. self timesRepeat: [ x := x + x ]. ^x end end",
        "m2",
        4,
    );
    t("class SmallInteger method m3 | t | t := 0. (self = 1) not ifTrue: [ t := t + 7 ]. ^t end end", "m3", 5);
    // assignment-as-last-expr in arm + discarded conditional value
    t("class P extends Object vars a method set: k a := k. ^self end method geta ^a end end
       class SmallInteger method m4 | p | p := P new set: 0. self > 0 ifTrue: [ p set: 9 ]. ^p geta end end", "m4", 3);
    t(com_workloads::TREES.source, "treeBench", 20);
}
