//! The Fith Machine interpreter with tracing.

use std::collections::HashMap;
use std::sync::Arc;

use com_cache::{CacheConfig, CacheStats, SetAssocCache};
use com_core::data_op;
use com_fpa::FpaFormat;
use com_isa::{Opcode, OpcodeTable, PrimOp};
use com_mem::{AllocKind, ClassId, MemError, ObjectSpace, TeamId, Word};
use com_obj::{AtomTable, ClassTable, LookupCost, MethodRef};
use com_trace::{Trace, TraceEvent};

use crate::{FithInstr, FithMethod, FithMethodRef};

/// A compiled Fith program: hierarchy, interning tables, methods.
#[derive(Debug, Clone)]
pub struct FithImage {
    /// The class hierarchy (primitive installs are translated into Fith
    /// dictionaries when the machine loads the image).
    pub classes: ClassTable,
    /// Interned atoms.
    pub atoms: AtomTable,
    /// Interned selectors.
    pub opcodes: OpcodeTable,
    /// Methods: (receiver class, selector, code).
    pub methods: Vec<(ClassId, Opcode, FithMethod)>,
}

impl FithImage {
    /// An empty image with standard primitives installed.
    pub fn empty() -> Self {
        let mut classes = ClassTable::new();
        com_obj::install_standard_primitives(&mut classes);
        FithImage {
            classes,
            atoms: AtomTable::new(),
            opcodes: OpcodeTable::new(),
            methods: Vec::new(),
        }
    }
}

/// Counters for one Fith run (experiment T3's stack-machine side).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FithStats {
    /// Instructions interpreted.
    pub instructions: u64,
    /// Sends executed (subset of instructions).
    pub sends: u64,
    /// Method calls (sends that resolved to defined methods).
    pub calls: u64,
    /// Total cycles: two per instruction (§5: executing a stack instruction
    /// "would take about the same amount of time" as a three-address one)
    /// plus lookup and memory stalls.
    pub cycles: u64,
    /// Full method lookups (ITLB misses).
    pub full_lookups: u64,
    /// Cycles spent in full lookup.
    pub lookup_cycles: u64,
    /// Peak operand stack depth.
    pub peak_stack: u64,
    /// Peak call depth.
    pub peak_frames: u64,
}

impl FithStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> Option<f64> {
        if self.instructions == 0 {
            None
        } else {
            Some(self.cycles as f64 / self.instructions as f64)
        }
    }
}

/// The result of a completed Fith run.
#[derive(Debug, Clone)]
pub struct FithResult {
    /// The value returned by the entry send.
    pub result: Word,
    /// Interpreter statistics.
    pub stats: FithStats,
}

/// One activation frame.
#[derive(Debug)]
struct Frame {
    method: Arc<FithMethod>,
    method_idx: usize,
    pc: usize,
    locals: Vec<(Word, ClassId)>,
}

/// The Fith Machine.
///
/// Uses the same [`ObjectSpace`] substrate and the same ITLB mechanism as
/// the COM (keyed on selector × receiver class), but interprets a
/// zero-address stack ISA.
#[derive(Debug)]
pub struct FithMachine {
    space: ObjectSpace,
    team: TeamId,
    classes: ClassTable,
    /// Defined-method dictionaries: class → selector → method index.
    dicts: HashMap<ClassId, HashMap<Opcode, usize>>,
    methods: Vec<Arc<FithMethod>>,
    itlb: Option<SetAssocCache<(Opcode, ClassId), FithMethodRef>>,
    lookup_cost: LookupCost,
    stack: Vec<(Word, ClassId)>,
    frames: Vec<Frame>,
    stats: FithStats,
    trace: Option<Trace>,
    memory_penalty: u64,
}

/// Errors surfaced by the Fith machine (reuses the COM's trap type; the
/// conditions are identical).
pub type FithError = com_core::MachineError;

impl FithMachine {
    /// Creates a machine and loads `image`. The ITLB defaults to the
    /// paper's 512×2-way geometry.
    pub fn new(image: &FithImage) -> Self {
        let mut m = FithMachine {
            space: ObjectSpace::new(24, FpaFormat::COM),
            team: TeamId(0),
            classes: image.classes.clone(),
            dicts: HashMap::new(),
            methods: Vec::new(),
            itlb: Some(SetAssocCache::new(
                CacheConfig::new(512, 2).expect("paper geometry"),
            )),
            lookup_cost: LookupCost::default(),
            stack: Vec::new(),
            frames: Vec::new(),
            stats: FithStats::default(),
            trace: None,
            memory_penalty: 4,
        };
        for (class, sel, method) in &image.methods {
            let idx = m.methods.len();
            m.methods.push(Arc::new(method.clone()));
            m.dicts.entry(*class).or_default().insert(*sel, idx);
        }
        m
    }

    /// Replaces the ITLB geometry (`None` disables it).
    pub fn set_itlb(&mut self, config: Option<CacheConfig>) {
        self.itlb = config.map(SetAssocCache::new);
    }

    /// Starts recording a trace of every interpreted instruction.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// Takes the recorded trace, leaving recording enabled with a fresh one.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.replace(Trace::new())
    }

    /// Interpreter statistics.
    pub fn stats(&self) -> FithStats {
        self.stats
    }

    /// ITLB statistics, if enabled.
    pub fn itlb_stats(&self) -> Option<CacheStats> {
        self.itlb.as_ref().map(|c| c.stats())
    }

    /// The object space (for seeding workload data).
    pub fn space_mut(&mut self) -> &mut ObjectSpace {
        &mut self.space
    }

    /// The machine's team.
    pub fn team(&self) -> TeamId {
        self.team
    }

    fn class_of_word(&mut self, w: &Word) -> Result<ClassId, FithError> {
        match w.primitive_class() {
            Some(c) => Ok(c),
            None => Ok(self.space.class_of(self.team, w.as_ptr().expect("ptr"))?),
        }
    }

    fn push(&mut self, w: Word, c: ClassId) {
        self.stack.push((w, c));
        self.stats.peak_stack = self.stats.peak_stack.max(self.stack.len() as u64);
    }

    fn pop(&mut self) -> Result<(Word, ClassId), FithError> {
        self.stack.pop().ok_or(FithError::NoContext)
    }

    fn lookup(&mut self, op: Opcode, class: ClassId) -> Result<FithMethodRef, FithError> {
        if let Some(itlb) = &mut self.itlb {
            if let Some(m) = itlb.lookup(&(op, class)) {
                return Ok(*m);
            }
        }
        // Full association: defined dictionaries first (overrides), then the
        // primitive installs, walking the superclass chain — charged by the
        // same cost model as the COM.
        self.stats.full_lookups += 1;
        let mut classes_visited = 0u32;
        let mut cur = Some(class);
        let mut found = None;
        while let Some(c) = cur {
            classes_visited += 1;
            if let Some(idx) = self.dicts.get(&c).and_then(|d| d.get(&op)) {
                found = Some(FithMethodRef::Defined(*idx));
                break;
            }
            if let Some(info) = self.classes.get(c) {
                if let (Some(MethodRef::Primitive(p)), _) = info.dict.lookup(op) {
                    found = Some(FithMethodRef::Primitive(p));
                    break;
                }
                cur = info.superclass;
            } else {
                break;
            }
        }
        let cost = classes_visited as u64 * self.lookup_cost.per_class
            + classes_visited as u64 * self.lookup_cost.per_probe;
        self.stats.lookup_cycles += cost;
        self.stats.cycles += cost;
        let m = found.ok_or(FithError::DoesNotUnderstand { opcode: op, class })?;
        if let Some(itlb) = &mut self.itlb {
            itlb.fill((op, class), m);
        }
        Ok(m)
    }

    /// Sends `selector` to `receiver` with `args`, running to completion.
    ///
    /// # Errors
    ///
    /// Returns [`FithError::UnknownSelector`] if `selector` was never
    /// interned in the image (no class could possibly answer it — the
    /// same refusal the COM engine gives, instead of a panic),
    /// [`FithError::StepLimit`] if the budget runs out, or any trap.
    pub fn send(
        &mut self,
        image: &FithImage,
        selector: &str,
        receiver: Word,
        args: &[Word],
        max_steps: u64,
    ) -> Result<FithResult, FithError> {
        let op = image
            .opcodes
            .get(selector)
            .ok_or_else(|| FithError::UnknownSelector(selector.to_string()))?;
        let rclass = self.class_of_word(&receiver)?;
        self.push(receiver, rclass);
        for a in args {
            let c = self.class_of_word(a)?;
            self.push(*a, c);
        }
        self.dispatch_send(op, args.len() as u8)?;
        let mut remaining = max_steps;
        while !self.frames.is_empty() {
            if remaining == 0 {
                return Err(FithError::StepLimit);
            }
            remaining -= 1;
            self.step()?;
        }
        let (result, _) = self.pop()?;
        Ok(FithResult {
            result,
            stats: self.stats,
        })
    }

    fn dispatch_send(&mut self, op: Opcode, nargs: u8) -> Result<(), FithError> {
        self.stats.sends += 1;
        let recv_pos = self
            .stack
            .len()
            .checked_sub(nargs as usize + 1)
            .ok_or(FithError::NoContext)?;
        let (recv, rclass) = self.stack[recv_pos];
        match self.lookup(op, rclass)? {
            FithMethodRef::Primitive(p) => self.exec_primitive(op, p, nargs),
            FithMethodRef::Defined(idx) => {
                self.stats.calls += 1;
                let method = Arc::clone(&self.methods[idx]);
                let mut locals = vec![(Word::Uninit, ClassId::UNINIT); method.n_locals as usize];
                // Pop arguments (reverse order), then the receiver.
                for i in (0..nargs as usize).rev() {
                    locals[1 + i] = self.pop()?;
                }
                let r = self.pop()?;
                debug_assert_eq!(r.0, recv);
                locals[0] = (recv, rclass);
                self.frames.push(Frame {
                    method,
                    method_idx: idx,
                    pc: 0,
                    locals,
                });
                self.stats.peak_frames = self.stats.peak_frames.max(self.frames.len() as u64);
                Ok(())
            }
        }
    }

    fn exec_primitive(&mut self, op: Opcode, p: PrimOp, nargs: u8) -> Result<(), FithError> {
        match p {
            PrimOp::At => {
                self.stats.cycles += self.memory_penalty;
                let (idx, _) = self.pop()?;
                let (ptr, _) = self.pop()?;
                let ptr = ptr.as_ptr().ok_or(FithError::BadOperands {
                    opcode: op,
                    reason: "at: requires an object pointer",
                })?;
                let i = idx.as_int().ok_or(FithError::BadOperands {
                    opcode: op,
                    reason: "at: requires an integer index",
                })? as u64;
                let addr = ptr.with_offset(ptr.offset() + i).map_err(MemError::from)?;
                let w = self.space.read(self.team, addr)?;
                let c = self.class_of_word(&w)?;
                self.push(w, c);
                Ok(())
            }
            PrimOp::AtPut => {
                self.stats.cycles += self.memory_penalty;
                let (value, vclass) = self.pop()?;
                let (idx, _) = self.pop()?;
                let (ptr, _) = self.pop()?;
                let ptr = ptr.as_ptr().ok_or(FithError::BadOperands {
                    opcode: op,
                    reason: "at:put: requires an object pointer",
                })?;
                let i = idx.as_int().ok_or(FithError::BadOperands {
                    opcode: op,
                    reason: "at:put: requires an integer index",
                })? as u64;
                let addr = ptr.with_offset(ptr.offset() + i).map_err(MemError::from)?;
                self.space.write(self.team, addr, value)?;
                self.push(value, vclass);
                Ok(())
            }
            PrimOp::New => {
                self.stats.cycles += self.memory_penalty;
                let (size, _) = self.pop()?;
                let (class_w, _) = self.pop()?;
                let class = ClassId(class_w.as_int().ok_or(FithError::BadOperands {
                    opcode: op,
                    reason: "new requires an integer class id",
                })? as u16);
                let words = size.as_int().ok_or(FithError::BadOperands {
                    opcode: op,
                    reason: "new requires an integer size",
                })?;
                let obj =
                    self.space
                        .create(self.team, class, words.max(0) as u64, AllocKind::Object)?;
                self.push(Word::Ptr(obj), class);
                Ok(())
            }
            PrimOp::Grow => {
                self.stats.cycles += self.memory_penalty;
                let (size, _) = self.pop()?;
                let (ptr, _) = self.pop()?;
                let ptr = ptr.as_ptr().ok_or(FithError::BadOperands {
                    opcode: op,
                    reason: "grow requires an object pointer",
                })?;
                let words = size.as_int().ok_or(FithError::BadOperands {
                    opcode: op,
                    reason: "grow requires an integer size",
                })?;
                let new = self
                    .space
                    .grow(self.team, ptr.base(), words.max(0) as u64)?;
                let class = self.space.class_of(self.team, new)?;
                self.push(Word::Ptr(new), class);
                Ok(())
            }
            _ => {
                // Pure data operation: unary uses the receiver alone; binary
                // pops the argument.
                let (b, c) = if nargs == 0 {
                    let r = self.pop()?;
                    (r.0, r.0)
                } else {
                    let arg = self.pop()?;
                    let r = self.pop()?;
                    (r.0, arg.0)
                };
                let v = data_op(p, op, b, c)?;
                let class = self.class_of_word(&v)?;
                self.push(v, class);
                Ok(())
            }
        }
    }

    fn step(&mut self) -> Result<(), FithError> {
        let (instr, addr) = {
            let f = self.frames.last().ok_or(FithError::NoContext)?;
            if f.pc >= f.method.code.len() {
                return Err(FithError::BadMethod(
                    com_fpa::Fpa::from_raw(0, FpaFormat::COM).expect("zero fits"),
                ));
            }
            (
                f.method.code[f.pc],
                ((f.method_idx as u64) << 20) | f.pc as u64,
            )
        };
        if let Some(t) = &mut self.trace {
            let tos_class = self
                .stack
                .last()
                .map(|(_, c)| *c)
                .unwrap_or(ClassId::UNINIT);
            t.record(TraceEvent {
                addr,
                opcode: instr.trace_opcode(),
                tos_class,
            });
        }
        self.stats.instructions += 1;
        self.stats.cycles += 2;
        // Advance pc before execution; jumps are relative to the next
        // instruction, and sends resume after the send.
        self.frames.last_mut().expect("checked").pc += 1;
        match instr {
            FithInstr::PushConst(i) => {
                let f = self.frames.last().expect("checked");
                let w = *f
                    .method
                    .consts
                    .get(i as usize)
                    .ok_or(FithError::BadOperands {
                        opcode: Opcode::MOVE,
                        reason: "constant index out of range",
                    })?;
                let c = self.class_of_word(&w)?;
                self.push(w, c);
            }
            FithInstr::PushLocal(i) => {
                let f = self.frames.last().expect("checked");
                let v = *f.locals.get(i as usize).ok_or(FithError::BadOperands {
                    opcode: Opcode::MOVE,
                    reason: "local index out of range",
                })?;
                self.push(v.0, v.1);
            }
            FithInstr::StoreLocal(i) => {
                let v = self.pop()?;
                let f = self.frames.last_mut().expect("checked");
                *f.locals.get_mut(i as usize).ok_or(FithError::BadOperands {
                    opcode: Opcode::MOVE,
                    reason: "local index out of range",
                })? = v;
            }
            FithInstr::Dup => {
                let v = *self.stack.last().ok_or(FithError::NoContext)?;
                self.push(v.0, v.1);
            }
            FithInstr::Drop => {
                self.pop()?;
            }
            FithInstr::Send { op, nargs } => self.dispatch_send(op, nargs)?,
            FithInstr::Jump(d) => {
                let f = self.frames.last_mut().expect("checked");
                f.pc = (f.pc as i64 + d as i64) as usize;
            }
            FithInstr::JumpIfFalse(d) => {
                let (cond, _) = self.pop()?;
                let taken = match cond {
                    Word::Atom(a) => {
                        !AtomTable::truthiness(a).ok_or(FithError::BadBranchCondition(cond))?
                    }
                    Word::Int(i) => i == 0,
                    other => return Err(FithError::BadBranchCondition(other)),
                };
                if taken {
                    let f = self.frames.last_mut().expect("checked");
                    f.pc = (f.pc as i64 + d as i64) as usize;
                }
            }
            FithInstr::ReturnTop => {
                let v = self.pop()?;
                self.frames.pop();
                self.push(v.0, v.1);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same concurrency contract as the COM engine: method bodies are
    /// shared behind `Arc`, so a stack machine may move across threads.
    #[test]
    fn fith_machine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FithMachine>();
    }

    #[test]
    fn send_of_uninterned_selector_errors_instead_of_panicking() {
        // Mirrors the COM engine's refusal (PR 3): a selector no source
        // ever mentioned cannot be answered by any class, and must be an
        // error, not a panic.
        let img = sumto_image();
        let mut m = FithMachine::new(&img);
        match m.send(&img, "neverInterned:", Word::Int(1), &[], 100) {
            Err(FithError::UnknownSelector(name)) => assert_eq!(name, "neverInterned:"),
            other => panic!("expected UnknownSelector, got {other:?}"),
        }
        // The machine is still usable after the refused send.
        let out = m.send(&img, "sumto", Word::Int(10), &[], 10_000).unwrap();
        assert_eq!(out.result, Word::Int(55));
    }

    /// SmallInteger>>sumto compiled by hand for the stack machine.
    fn sumto_image() -> FithImage {
        let mut img = FithImage::empty();
        let sel = img.opcodes.intern("sumto");
        // sumto: self <= 0 ifTrue: [^0]. ^self + (self - 1) sumto
        let code = vec![
            FithInstr::PushLocal(0),
            FithInstr::PushConst(0), // 0
            FithInstr::Send {
                op: Opcode::LE,
                nargs: 1,
            },
            FithInstr::JumpIfFalse(2),
            FithInstr::PushConst(0),
            FithInstr::ReturnTop,
            FithInstr::PushLocal(0),
            FithInstr::PushLocal(0),
            FithInstr::PushConst(1), // 1
            FithInstr::Send {
                op: Opcode::SUB,
                nargs: 1,
            },
            FithInstr::Send { op: sel, nargs: 0 },
            FithInstr::Send {
                op: Opcode::ADD,
                nargs: 1,
            },
            FithInstr::ReturnTop,
        ];
        img.methods.push((
            ClassId::SMALL_INT,
            sel,
            FithMethod {
                name: "SmallInteger>>sumto".into(),
                n_args: 0,
                n_locals: 1,
                code,
                consts: vec![Word::Int(0), Word::Int(1)],
            },
        ));
        img
    }

    #[test]
    fn recursive_sum_runs() {
        let img = sumto_image();
        let mut m = FithMachine::new(&img);
        let out = m
            .send(&img, "sumto", Word::Int(100), &[], 1_000_000)
            .unwrap();
        assert_eq!(out.result, Word::Int(5050));
        assert!(out.stats.calls >= 101);
        assert!(out.stats.peak_frames >= 100);
    }

    #[test]
    fn trace_records_all_instructions() {
        let img = sumto_image();
        let mut m = FithMachine::new(&img);
        m.enable_trace();
        m.send(&img, "sumto", Word::Int(10), &[], 100_000).unwrap();
        let t = m.take_trace().unwrap();
        assert_eq!(t.len() as u64, m.stats().instructions);
        // Sends appear with their real selector, pushes with pseudo-opcodes.
        assert!(t.events().iter().any(|e| e.opcode == Opcode::ADD.0));
        assert!(t.events().iter().any(|e| e.opcode == 0x401));
    }

    #[test]
    fn itlb_eliminates_lookups_on_fith_too() {
        let img = sumto_image();
        let mut m = FithMachine::new(&img);
        m.send(&img, "sumto", Word::Int(200), &[], 1_000_000)
            .unwrap();
        let s = m.stats();
        // Hundreds of sends, only a handful of distinct (op, class) keys.
        assert!(s.sends > 600);
        assert!(s.full_lookups < 10, "got {}", s.full_lookups);
    }

    #[test]
    fn objects_work_through_the_shared_substrate() {
        let mut img = FithImage::empty();
        let sel = img.opcodes.intern("poke");
        // poke: (arg1 at: 0 put: 42), then read it back.
        let code = vec![
            FithInstr::PushLocal(1),
            FithInstr::PushConst(0),
            FithInstr::PushConst(1),
            FithInstr::Send {
                op: Opcode::ATPUT,
                nargs: 2,
            },
            FithInstr::Drop,
            FithInstr::PushLocal(1),
            FithInstr::PushConst(0),
            FithInstr::Send {
                op: Opcode::AT,
                nargs: 1,
            },
            FithInstr::ReturnTop,
        ];
        img.methods.push((
            ClassId::SMALL_INT,
            sel,
            FithMethod {
                name: "poke".into(),
                n_args: 1,
                n_locals: 2,
                code,
                consts: vec![Word::Int(0), Word::Int(42)],
            },
        ));
        let cell_class = img
            .classes
            .define("Cell", Some(ClassTable::OBJECT), 1)
            .unwrap();
        let mut m = FithMachine::new(&img);
        let obj = m
            .space_mut()
            .create(TeamId(0), cell_class, 4, AllocKind::Object)
            .unwrap();
        let out = m
            .send(&img, "poke", Word::Int(0), &[Word::Ptr(obj)], 10_000)
            .unwrap();
        assert_eq!(out.result, Word::Int(42));
    }
}
