//! The Fith Machine's zero-address instruction set.

use com_isa::Opcode;
use com_mem::Word;

/// One Fith stack-machine instruction.
///
/// The set is the conventional expression-stack repertoire: the Smalltalk-80
/// virtual machine the paper contrasts with (§4: "It is a zero instruction
/// stack machine") has the same shape. Sends resolve through the identical
/// ITLB mechanism as the COM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FithInstr {
    /// Push literal `consts[i]`.
    PushConst(u16),
    /// Push local `i` (0 = self/receiver, then arguments, then temps).
    PushLocal(u16),
    /// Pop into local `i`.
    StoreLocal(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Send `op` with `nargs` arguments: pops the arguments and the
    /// receiver beneath them, pushes the result.
    Send {
        /// The message selector (abstract opcode).
        op: Opcode,
        /// Argument count (receiver excluded).
        nargs: u8,
    },
    /// Relative jump: displacement from the following instruction.
    Jump(i32),
    /// Pop a condition; jump when it is false.
    JumpIfFalse(i32),
    /// Pop the result and return it to the caller.
    ReturnTop,
}

impl FithInstr {
    /// A pseudo-opcode for trace records: sends use their real selector;
    /// stack operations use codes above the 10-bit selector space so they
    /// never collide with message selectors.
    pub fn trace_opcode(&self) -> u16 {
        match self {
            FithInstr::Send { op, .. } => op.0,
            FithInstr::PushConst(_) => 0x400,
            FithInstr::PushLocal(_) => 0x401,
            FithInstr::StoreLocal(_) => 0x402,
            FithInstr::Dup => 0x403,
            FithInstr::Drop => 0x404,
            FithInstr::Jump(_) => 0x405,
            FithInstr::JumpIfFalse(_) => 0x406,
            FithInstr::ReturnTop => 0x407,
        }
    }
}

impl core::fmt::Display for FithInstr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FithInstr::PushConst(i) => write!(f, "pushk {i}"),
            FithInstr::PushLocal(i) => write!(f, "pushl {i}"),
            FithInstr::StoreLocal(i) => write!(f, "storel {i}"),
            FithInstr::Dup => write!(f, "dup"),
            FithInstr::Drop => write!(f, "drop"),
            FithInstr::Send { op, nargs } => write!(f, "send {op}/{nargs}"),
            FithInstr::Jump(d) => write!(f, "jmp {d:+}"),
            FithInstr::JumpIfFalse(d) => write!(f, "jf {d:+}"),
            FithInstr::ReturnTop => write!(f, "ret"),
        }
    }
}

/// A compiled Fith method.
#[derive(Debug, Clone)]
pub struct FithMethod {
    /// Diagnostic name.
    pub name: String,
    /// Argument count (receiver excluded; it is local 0).
    pub n_args: u8,
    /// Total locals (receiver + args + temps).
    pub n_locals: u16,
    /// The instruction stream.
    pub code: Vec<FithInstr>,
    /// The literal table.
    pub consts: Vec<Word>,
}

/// What a Fith send resolves to: the same primitive-bit structure as the
/// COM's ITLB entries, with defined methods named by table index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FithMethodRef {
    /// A function-unit operation.
    Primitive(com_isa::PrimOp),
    /// Index into the machine's method table.
    Defined(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_opcodes_never_collide_with_selectors() {
        for i in [
            FithInstr::PushConst(0),
            FithInstr::PushLocal(0),
            FithInstr::StoreLocal(0),
            FithInstr::Dup,
            FithInstr::Drop,
            FithInstr::Jump(0),
            FithInstr::JumpIfFalse(0),
            FithInstr::ReturnTop,
        ] {
            assert!(i.trace_opcode() > Opcode::MAX);
        }
        let s = FithInstr::Send {
            op: Opcode::ADD,
            nargs: 1,
        };
        assert_eq!(s.trace_opcode(), Opcode::ADD.0);
    }

    #[test]
    fn display() {
        assert_eq!(FithInstr::PushLocal(3).to_string(), "pushl 3");
        assert_eq!(
            FithInstr::Send {
                op: Opcode::ADD,
                nargs: 1
            }
            .to_string(),
            "send +/1"
        );
        assert_eq!(FithInstr::Jump(-4).to_string(), "jmp -4");
    }
}
