//! The Fith Machine: the stack-architecture precursor of the COM (§5).
//!
//! "The Fith language combines the syntax of Forth with the semantics of
//! Smalltalk. Since Fith is a stack based language, the Fith Machine was a
//! stack machine and had an instruction set very different from the three
//! address instruction set of the COM; however the instruction translation
//! mechanisms of the two machines are identical so the results presented
//! here should apply to the COM as well."
//!
//! The Fith machine plays two roles in the reproduction:
//!
//! 1. **Trace source for Figures 10 and 11** — the interpreter records, for
//!    each instruction, "the address of the instruction, the opcode, and
//!    the type of object on the top of the stack", exactly as the paper's
//!    instrumented interpreter on the IBM 4341 did.
//! 2. **Baseline for experiment T3** — "Stack machines while offering small
//!    code size require almost twice as many instructions to implement a
//!    given source language program than a three address machine."

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod isa;
mod machine;

pub use isa::{FithInstr, FithMethod, FithMethodRef};
pub use machine::{FithImage, FithMachine, FithResult, FithStats};
