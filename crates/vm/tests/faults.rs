//! Session fault isolation: a trap ends one call, not the session — and
//! never disturbs any other tenant.
//!
//! The contract under test (ISSUE 5):
//! * every trap kind leaves the session serving follow-up calls whose
//!   results and [`CycleStats`] deltas are bit-identical to a fresh
//!   session's;
//! * the trapped call graph is collectable — after a collection the
//!   trapped session's heap matches a fresh session's exactly;
//! * [`VmError::Trap`] carries the unwound call's partial statistics;
//! * a trapping tenant inside the [`Scheduler`] or [`ParallelExecutor`]
//!   leaves every other tenant's results and statistics bit-identical to
//!   solo runs.

use com_core::CycleStats;
use com_vm::{Outcome, ParallelExecutor, Scheduler, Session, Vm, VmError, Word};

const PROGRAM: &str = r#"
    class Other extends Object
      method foo ^11 end
    end
    class Catcher extends Object
      method doesNotUnderstand: msg ^39 + (msg rawAt: 1) end
    end
    class SmallInteger
      method tri | acc |
        acc := 0. 1 to: self do: [ :i | acc := acc + i ]. ^acc
      end
      method boom ^1 / (self - self) end
      method oops | t | ^t + 1 end
    end
"#;

fn vm() -> Vm {
    Vm::new(PROGRAM).unwrap()
}

/// Drives `trap` on a fresh session, asserts it produced the expected
/// error, then proves the session's next call is bit-identical to a
/// fresh session's first call — results, `CycleStats` delta, code
/// roots, and (after a collection) the live heap.
fn assert_reuse_matches_fresh(vm: &Vm, label: &str, trap: impl FnOnce(&mut Session)) {
    let mut fresh = vm.session().unwrap();
    let boot_roots = fresh.machine().code_root_count();
    let baseline = fresh.send_raw("tri", Word::Int(9), &[], u64::MAX).unwrap();

    let mut s = vm.session().unwrap();
    trap(&mut s);
    assert!(!s.in_flight(), "{label}: the failed call must be over");
    assert_eq!(
        s.machine().code_root_count(),
        boot_roots,
        "{label}: the failed call's entry method stayed rooted"
    );
    let before = s.stats();
    let out = s.send_raw("tri", Word::Int(9), &[], u64::MAX).unwrap();
    assert_eq!(out.result, baseline.result, "{label}: follow-up result");
    assert_eq!(
        out.stats.since(&before),
        baseline.stats,
        "{label}: follow-up call diverged from a fresh session's"
    );
    // The failed call graph must be garbage: collect both sessions and
    // compare live heaps word for word.
    s.machine_mut().collect_garbage().unwrap();
    fresh.machine_mut().collect_garbage().unwrap();
    assert_eq!(
        s.space().memory().buddy().allocated_words(),
        fresh.space().memory().buddy().allocated_words(),
        "{label}: the failed call graph stayed live across GC"
    );
}

#[test]
fn dnu_trap_then_reuse_matches_fresh_session() {
    let vm = vm();
    assert_reuse_matches_fresh(&vm, "dnu", |s| {
        // `foo` is interned (Other defines it) but integers do not
        // answer it, and no handler is installed on SmallInteger.
        match s.send_raw("foo", Word::Int(3), &[], u64::MAX) {
            Err(VmError::Trap(t)) => {
                assert!(matches!(
                    t.cause,
                    com_core::MachineError::DoesNotUnderstand { .. }
                ));
                assert!(t.stats.instructions > 0, "partial stats must be carried");
            }
            other => panic!("expected DNU trap, got {other:?}"),
        }
    });
}

#[test]
fn divide_by_zero_then_reuse_matches_fresh_session() {
    let vm = vm();
    assert_reuse_matches_fresh(&vm, "div0", |s| {
        match s.send_raw("boom", Word::Int(3), &[], u64::MAX) {
            Err(VmError::Trap(t)) => {
                assert!(matches!(
                    t.cause,
                    com_core::MachineError::BadOperands { .. }
                ));
            }
            other => panic!("expected BadOperands trap, got {other:?}"),
        }
    });
}

#[test]
fn uninit_operand_then_reuse_matches_fresh_session() {
    let vm = vm();
    assert_reuse_matches_fresh(&vm, "uninit", |s| {
        // An unwritten temporary flows into dispatch: the receiver
        // classes as UndefinedObject and the `+` fails lookup.
        match s.send_raw("oops", Word::Int(3), &[], u64::MAX) {
            Err(VmError::Trap(t)) => {
                assert!(matches!(
                    t.cause,
                    com_core::MachineError::DoesNotUnderstand { .. }
                ));
            }
            other => panic!("expected uninit-operand trap, got {other:?}"),
        }
    });
}

#[test]
fn out_of_fuel_then_reuse_matches_fresh_session() {
    let vm = vm();
    assert_reuse_matches_fresh(&vm, "fuel", |s| {
        match s.send_raw("tri", Word::Int(10_000), &[], 25) {
            Err(VmError::OutOfFuel { budget: 25 }) => {}
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
    });
}

#[test]
fn budget_exhaustion_then_cancel_matches_fresh_session() {
    let vm = vm();
    assert_reuse_matches_fresh(&vm, "cancel", |s| {
        s.call_start("tri", 10_000i64).unwrap();
        assert!(matches!(
            s.resume::<i64>(25).unwrap(),
            Outcome::<i64>::Yielded
        ));
        s.cancel();
    });
}

#[test]
fn stalled_session_cancels_and_reuses_bit_identical_to_fresh() {
    let vm = vm();
    let mut fresh = vm.session().unwrap();
    let boot_roots = fresh.machine().code_root_count();
    let baseline = fresh.send_raw("tri", Word::Int(9), &[], u64::MAX).unwrap();

    // A zero-instruction slice can never make progress: the scheduler's
    // guard reports the task as Stalled instead of spinning forever.
    let mut sched = Scheduler::new(0);
    let mut s = vm.session().unwrap();
    s.call_start("tri", 10_000i64).unwrap();
    let id = sched.spawn(s).unwrap();
    sched.run();
    match sched.error(id) {
        Some(VmError::Stalled { slice: 0 }) => {}
        other => panic!("expected Stalled, got {other:?}"),
    }
    let mut s = sched.into_sessions().remove(0);
    // The stalled call is still in flight; cancel unwinds it and the
    // session serves again, bit-identical to a fresh one.
    assert!(
        s.in_flight(),
        "a stalled call stays in flight until cancelled"
    );
    s.cancel();
    assert_eq!(
        s.machine().code_root_count(),
        boot_roots,
        "cancel after a stall must un-root the abandoned entry method"
    );
    let before = s.stats();
    let out = s.send_raw("tri", Word::Int(9), &[], u64::MAX).unwrap();
    assert_eq!(out.result, baseline.result);
    assert_eq!(
        out.stats.since(&before),
        baseline.stats,
        "post-stall reuse diverged from a fresh session"
    );
    s.machine_mut().collect_garbage().unwrap();
    fresh.machine_mut().collect_garbage().unwrap();
    assert_eq!(
        s.space().memory().buddy().allocated_words(),
        fresh.space().memory().buddy().allocated_words(),
        "the stalled call graph stayed live across GC"
    );
}

#[test]
fn yield_then_drop_releases_the_in_flight_call() {
    let vm = vm();
    let mut fresh = vm.session().unwrap();
    let boot_roots = fresh.machine().code_root_count();
    fresh.machine_mut().collect_garbage().unwrap();
    let fresh_live = fresh.space().memory().buddy().allocated_words();

    let mut s = vm.session().unwrap();
    s.call_start("tri", 10_000i64).unwrap();
    assert!(matches!(
        s.resume::<i64>(25).unwrap(),
        Outcome::<i64>::Yielded
    ));
    assert!(
        s.machine().code_root_count() > boot_roots,
        "an in-flight call must hold its entry root"
    );
    // Cancel releases every code root; post-GC the heap matches a fresh
    // session word for word.
    s.cancel();
    assert_eq!(s.machine().code_root_count(), boot_roots);
    s.machine_mut().collect_garbage().unwrap();
    assert_eq!(
        s.space().memory().buddy().allocated_words(),
        fresh_live,
        "the abandoned call graph stayed live across GC"
    );
    // And dropping a session mid-resume takes the same path: no panic,
    // and the shared image serves the next session unperturbed.
    s.call_start("tri", 10_000i64).unwrap();
    assert!(matches!(
        s.resume::<i64>(25).unwrap(),
        Outcome::<i64>::Yielded
    ));
    assert!(s.in_flight());
    drop(s);
    let mut after = vm.session().unwrap();
    assert_eq!(after.call::<i64>("tri", 9).unwrap(), 45);
    assert_eq!(after.machine().code_root_count(), boot_roots);
}

#[test]
fn resumable_trap_surfaces_with_partial_stats_and_session_survives() {
    let vm = vm();
    let mut s = vm.session().unwrap();
    s.call_start("boom", 5i64).unwrap();
    let err = loop {
        match s.resume::<i64>(3) {
            Ok(Outcome::Yielded) => {}
            Ok(Outcome::Done(_)) => panic!("boom must trap"),
            Err(e) => break e,
        }
    };
    match err {
        VmError::Trap(t) => {
            assert!(matches!(
                t.cause,
                com_core::MachineError::BadOperands { .. }
            ));
            // Partial stats are the *call's* delta, not the session's
            // cumulative counters — and the faulting instruction counts.
            assert!(t.stats.instructions > 0);
            assert_eq!(t.stats.instructions, s.stats().instructions);
        }
        other => panic!("expected Trap, got {other:?}"),
    }
    assert!(!s.in_flight());
    assert_eq!(s.call::<i64>("tri", 4).unwrap(), 10);
}

#[test]
fn dnu_handler_answers_through_the_facade() {
    // The acceptance path: a handler installed on a class catches a
    // failed *entry* send (zero-format reification) and the program
    // continues to a self-checked answer.
    let vm = vm();
    let mut s = vm.session().unwrap();
    let catcher_class = vm.image().image().classes.by_name("Catcher").unwrap();
    let obj = s
        .machine_mut()
        .space_mut()
        .create(
            com_mem::TeamId(0),
            catcher_class,
            1,
            com_mem::AllocKind::Object,
        )
        .unwrap();
    // `foo` is interned; Catcher does not define it; the handler answers
    // 39 + the reified nargs (a no-argument entry send transmits only
    // the receiver: nargs = 1).
    let out = s.send_raw("foo", Word::Ptr(obj), &[], u64::MAX).unwrap();
    assert_eq!(out.result, Word::Int(40));
    assert_eq!(out.stats.soft_traps, 1);
    // With an argument the same handler sees nargs = 2.
    let out = s
        .send_raw("foo", Word::Ptr(obj), &[Word::Int(7)], u64::MAX)
        .unwrap();
    assert_eq!(out.result, Word::Int(41));
    // A plain `Other` still answers `foo` the ordinary way.
    let other_class = vm.image().image().classes.by_name("Other").unwrap();
    let other = s
        .machine_mut()
        .space_mut()
        .create(
            com_mem::TeamId(0),
            other_class,
            1,
            com_mem::AllocKind::Object,
        )
        .unwrap();
    assert_eq!(
        s.send_raw("foo", Word::Ptr(other), &[], u64::MAX)
            .unwrap()
            .result,
        Word::Int(11)
    );
}

/// Solo baselines: (result, per-call CycleStats) for `tri` tenants.
fn solo_baselines(vm: &Vm, sizes: &[i64]) -> Vec<(Word, CycleStats)> {
    sizes
        .iter()
        .map(|n| {
            let mut s = vm.session().unwrap();
            let _ = s.call::<i64>("tri", *n).unwrap();
            let run = s.last_run().unwrap();
            (run.result, run.stats)
        })
        .collect()
}

#[test]
fn scheduler_tenant_trap_leaves_other_tenants_bit_identical() {
    let vm = vm();
    let sizes = [6i64, 11, 17, 23];
    let solos = solo_baselines(&vm, &sizes);

    let mut sched = Scheduler::new(13);
    let mut ids = Vec::new();
    // The trapping tenant is spawned *first* so its mid-schedule trap
    // precedes every other tenant's remaining slices.
    let mut bad = vm.session().unwrap();
    bad.call_start("boom", 3i64).unwrap();
    let bad_id = sched.spawn(bad).unwrap();
    for n in sizes {
        let mut s = vm.session().unwrap();
        s.call_start("tri", n).unwrap();
        ids.push(sched.spawn(s).unwrap());
    }
    sched.run();
    match sched.error(bad_id) {
        Some(VmError::Trap(t)) => assert!(t.stats.instructions > 0),
        other => panic!("expected the boom tenant to trap, got {other:?}"),
    }
    for (i, id) in ids.iter().enumerate() {
        let run = sched.session(*id).unwrap().last_run().unwrap();
        assert_eq!(run.result, solos[i].0);
        assert_eq!(
            run.stats, solos[i].1,
            "tenant {i}: a sibling's trap changed its statistics"
        );
    }
}

#[test]
fn pool_tenant_trap_leaves_other_tenants_bit_identical() {
    let vm = vm();
    let sizes = [6i64, 11, 17, 23, 29, 35];
    let solos = solo_baselines(&vm, &sizes);

    let mut sessions = Vec::new();
    for n in sizes {
        let mut s = vm.session().unwrap();
        s.call_start("tri", n).unwrap();
        sessions.push(s);
    }
    let mut bad = vm.session().unwrap();
    bad.call_start("boom", 3i64).unwrap();
    sessions.push(bad);

    let runs = ParallelExecutor::new(4, 17).run(sessions);
    match &runs.last().unwrap().error {
        Some(VmError::Trap(t)) => assert!(t.stats.instructions > 0),
        other => panic!("expected the boom tenant to trap, got {other:?}"),
    }
    for (i, solo) in solos.iter().enumerate() {
        let run = runs[i].session.last_run().unwrap();
        assert_eq!(run.result, solo.0);
        assert_eq!(
            run.stats, solo.1,
            "tenant {i}: a sibling's trap changed its statistics"
        );
    }
    // Trapped sessions keep serving: the pool hands the session back
    // alive.
    let mut revived = runs.into_iter().last().unwrap().session;
    assert_eq!(revived.call::<i64>("tri", 4).unwrap(), 10);
}
