//! The concurrency contract of the facade, end to end: the engine layer
//! is `Send`, sessions move freely across threads, and the parallel
//! worker-pool executor preserves per-tenant results and `CycleStats`
//! bit-for-bit against both solo and single-threaded-scheduler runs.

use com_core::CycleStats;
use com_mem::Word;
use com_vm::{Outcome, ParallelExecutor, Scheduler, Session, Vm, VmError};

const PROGRAM: &str = r#"
    class SmallInteger
      method factorial | acc |
        acc := 1.
        1 to: self do: [ :i | acc := acc * i ].
        ^acc
      end
      method tri ^self * (self + 1) / 2 end
      method fib
        self < 2 ifTrue: [ ^self ].
        ^(self - 1) fib + (self - 2) fib
      end
      method boom ^1 / (self - self) end
    end
"#;

/// (selector, receiver, expected) — a mixed bag of instruction streams.
fn tenant_mix() -> Vec<(&'static str, i64, i64)> {
    vec![
        ("factorial", 12, 479_001_600),
        ("fib", 13, 233),
        ("tri", 10_000, 50_005_000),
        ("factorial", 20, 2_432_902_008_176_640_000),
        ("fib", 10, 55),
        ("tri", 3, 6),
    ]
}

/// Runs every tenant alone, uninterrupted: the reference outcome.
fn solo_baselines(vm: &Vm) -> Vec<(Word, CycleStats)> {
    tenant_mix()
        .iter()
        .map(|(sel, n, expected)| {
            let mut s = vm.session().unwrap();
            let got: i64 = s.call(sel, *n).unwrap();
            assert_eq!(got, *expected, "{sel}({n}) self-check");
            let run = s.last_run().unwrap();
            (run.result, run.stats)
        })
        .collect()
}

fn started_sessions(vm: &Vm) -> Vec<Session> {
    tenant_mix()
        .iter()
        .map(|(sel, n, _)| {
            let mut s = vm.session().unwrap();
            s.call_start(sel, *n).unwrap();
            s
        })
        .collect()
}

#[test]
fn facade_thread_contract_is_compile_time() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    // The contract the crate docs state: Vm shared freely, Session moved
    // freely. (Session: !Sync is asserted by a compile_fail doctest on
    // the crate root — exclusive &mut-style driving is the design.)
    assert_send_sync::<Vm>();
    assert_send_sync::<com_vm::LoadedImage>();
    assert_send::<Session>();
    assert_send::<com_vm::Machine>();
    assert_send::<VmError>();
    assert_send::<Scheduler>();
    assert_send::<ParallelExecutor>();
}

#[test]
fn parallel_pool_is_bit_identical_to_solo_and_scheduler() {
    let vm = Vm::new(PROGRAM).unwrap();
    let solo = solo_baselines(&vm);

    // Single-threaded reference: the cooperative round-robin scheduler.
    let mut sched = Scheduler::new(701);
    let ids: Vec<_> = started_sessions(&vm)
        .into_iter()
        .map(|s| sched.spawn(s).unwrap())
        .collect();
    sched.run();

    for workers in [1, 2, 4, 8] {
        let pool = ParallelExecutor::new(workers, 701);
        let runs = pool.run(started_sessions(&vm));
        assert_eq!(runs.len(), solo.len());
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.error, None, "tenant {i} trapped at {workers} workers");
            assert_eq!(
                run.result,
                Some(solo[i].0),
                "tenant {i} result diverged at {workers} workers"
            );
            let stats = run.session.last_run().unwrap().stats;
            assert_eq!(
                stats, solo[i].1,
                "tenant {i} CycleStats diverged from solo at {workers} workers"
            );
            let sched_stats = sched.session(ids[i]).unwrap().last_run().unwrap().stats;
            assert_eq!(
                stats, sched_stats,
                "tenant {i} CycleStats diverged from the scheduler at {workers} workers"
            );
            assert!(run.slices >= 1);
        }
    }
}

#[test]
fn session_resumed_on_another_thread_is_bit_identical() {
    let vm = Vm::new(PROGRAM).unwrap();

    // Reference: started and driven to completion on this thread.
    let mut same = vm.session().unwrap();
    same.call_start("fib", 16).unwrap();
    let expected = loop {
        match same.resume::<i64>(97).unwrap() {
            Outcome::Done(n) => break n,
            Outcome::Yielded => {}
        }
    };
    let solo = same.last_run().unwrap().clone();

    // Start the call HERE, resume it over THERE, finish it back here.
    let mut s = vm.session().unwrap();
    s.call_start("fib", 16).unwrap();
    assert_eq!(s.resume::<i64>(97).unwrap(), Outcome::Yielded);
    let mut s = std::thread::spawn(move || {
        for _ in 0..3 {
            match s.resume::<i64>(97).unwrap() {
                Outcome::Yielded => {}
                Outcome::Done(_) => panic!("finished too early for the test to move it back"),
            }
        }
        s
    })
    .join()
    .unwrap();
    let got = loop {
        match s.resume::<i64>(97).unwrap() {
            Outcome::Done(n) => break n,
            Outcome::Yielded => {}
        }
    };

    assert_eq!(got, expected);
    let run = s.last_run().unwrap();
    assert_eq!(run.result, solo.result);
    assert_eq!(
        run.stats, solo.stats,
        "crossing threads changed the architectural statistics"
    );
    assert_eq!(run.steps, solo.steps);
}

#[test]
fn whole_sessions_spawned_and_finished_on_worker_threads() {
    let vm = Vm::new(PROGRAM).unwrap();
    let solo = solo_baselines(&vm);
    let runs: Vec<(usize, Word, CycleStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenant_mix()
            .into_iter()
            .enumerate()
            .map(|(i, (sel, n, _))| {
                let vm = &vm;
                scope.spawn(move || {
                    let mut s = vm.session().unwrap();
                    let _: i64 = s.call(sel, n).unwrap();
                    let run = s.last_run().unwrap();
                    (i, run.result, run.stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, result, stats) in runs {
        assert_eq!(result, solo[i].0);
        assert_eq!(stats, solo[i].1, "tenant {i} diverged on its own thread");
    }
}

#[test]
fn pool_reports_per_tenant_traps_without_disturbing_others() {
    let vm = Vm::new(PROGRAM).unwrap();
    let mut sessions = started_sessions(&vm);
    let mut bad = vm.session().unwrap();
    bad.call_start("boom", 3).unwrap();
    sessions.push(bad);
    let runs = ParallelExecutor::new(4, 500).run(sessions);
    let last = runs.last().unwrap();
    assert!(
        matches!(last.error, Some(VmError::Trap(_))),
        "the boom tenant must trap, got {:?}",
        last.error
    );
    for (i, (_, _, expected)) in tenant_mix().iter().enumerate() {
        assert_eq!(runs[i].result_as::<i64>().unwrap(), Some(*expected));
    }
}

#[test]
fn idle_sessions_come_back_with_a_per_tenant_error() {
    let vm = Vm::new(PROGRAM).unwrap();
    let idle = vm.session().unwrap();
    let runs = ParallelExecutor::new(2, 100).run(vec![idle]);
    assert_eq!(
        runs.len(),
        1,
        "the idle session must come back, not be dropped"
    );
    assert_eq!(runs[0].error, Some(VmError::NoCallInProgress));
    assert_eq!(runs[0].slices, 0);
    // The handed-back session is alive and usable.
    let mut s = runs.into_iter().next().unwrap().session;
    assert_eq!(s.call::<i64>("tri", 4).unwrap(), 10);
    assert!(ParallelExecutor::new(2, 100).run(Vec::new()).is_empty());
}

#[test]
fn zero_slice_stalls_every_tenant_instead_of_spinning() {
    let vm = Vm::new(PROGRAM).unwrap();
    // The pool: a zero budget yields without retiring anything; the
    // progress check must drain the pool with Stalled errors, not hang.
    let runs = ParallelExecutor::new(2, 0).run(started_sessions(&vm));
    for run in &runs {
        assert_eq!(run.error, Some(VmError::Stalled { slice: 0 }));
        assert_eq!(run.result, None);
    }
    // The single-threaded scheduler: same check, same surfaced error
    // (this used to spin forever).
    let mut sched = Scheduler::new(0);
    let ids: Vec<_> = started_sessions(&vm)
        .into_iter()
        .map(|s| sched.spawn(s).unwrap())
        .collect();
    sched.run();
    for id in ids {
        assert_eq!(sched.error(id), Some(&VmError::Stalled { slice: 0 }));
        assert_eq!(sched.result(id), None);
    }
}

#[test]
fn stalled_tenants_can_be_cancelled_and_reused() {
    let vm = Vm::new(PROGRAM).unwrap();
    let mut s = vm.session().unwrap();
    s.call_start("factorial", 10).unwrap();
    let mut runs = ParallelExecutor::new(1, 0).run(vec![s]);
    let mut s = runs.pop().unwrap().session;
    assert!(s.in_flight(), "a stalled call is still in flight");
    s.cancel();
    assert_eq!(s.call::<i64>("factorial", 5).unwrap(), 120);
}

#[test]
fn many_tenants_over_few_workers_all_finish() {
    let vm = Vm::new(PROGRAM).unwrap();
    let mut sessions = Vec::new();
    let mut expected = Vec::new();
    for i in 0..48i64 {
        let mut s = vm.session().unwrap();
        let n = 6 + (i % 11);
        s.call_start("fib", n).unwrap();
        sessions.push(s);
        expected.push(fib(n));
    }
    let (runs, _steals) = ParallelExecutor::new(3, 211).run_counting_steals(sessions);
    for (i, run) in runs.iter().enumerate() {
        assert_eq!(run.result_as::<i64>().unwrap(), Some(expected[i]));
    }
}

fn fib(n: i64) -> i64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}
