//! Service-runtime soak: the `com_vm::server` contract under injected
//! faults and overload (ISSUE 6 acceptance).
//!
//! Proves, against a deterministic [`FaultPlan`]:
//!
//! 1. tenants the plan does **not** touch finish with results and
//!    per-request `CycleStats` **bit-identical** to solo fault-free
//!    runs — and their drained sessions' cumulative stats match too;
//! 2. `SubmitError::QueueFull` backpressure fires at the configured
//!    depth instead of growing memory without bound;
//! 3. drain/shutdown resolves **every** ticket (completed, cancelled,
//!    or typed error) and returns **every** session — none lost.

use std::time::Duration;

use com_core::CycleStats;
use com_vm::server::{
    FaultKind, FaultPlan, Priority, Request, RetryPolicy, ServeError, Server, ServerConfig,
    SubmitError, TenantConfig, Ticket,
};
use com_vm::{Vm, VmError, Word};

const PROGRAM: &str = r#"
    class SmallInteger
      method tri | acc |
        acc := 0. 1 to: self do: [ :i | acc := acc + i ]. ^acc
      end
      method spin | n |
        n := 0. 1 to: self do: [ :i | n := n + i ]. ^n
      end
    end
"#;

fn vm() -> Vm {
    Vm::new(PROGRAM).unwrap()
}

fn config(workers: usize, depth: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_depth: depth,
        base_slice: 50,
        retry: RetryPolicy::default(),
    }
}

/// The workload tenant `t` sends as its request `r` (deterministic,
/// spread over sizes so slices interleave).
fn workload(tenant: usize, request: usize) -> i64 {
    5 + 2 * (tenant as i64 * 3 + request as i64)
}

/// Solo fault-free baseline: one fresh session runs tenant `t`'s whole
/// request sequence one-shot; returns each request's (result, delta) and
/// the session's final cumulative stats.
fn solo_baseline(vm: &Vm, tenant: usize, requests: usize) -> (Vec<(Word, CycleStats)>, CycleStats) {
    let mut s = vm.session().unwrap();
    let mut per_request = Vec::new();
    for r in 0..requests {
        let before = s.stats();
        let out = s
            .send_raw("tri", Word::Int(workload(tenant, r)), &[], u64::MAX)
            .unwrap();
        per_request.push((out.result, out.stats.since(&before)));
    }
    let total = s.stats();
    (per_request, total)
}

#[test]
fn soak_unaffected_tenants_stay_bit_identical_under_faults() {
    FaultPlan::silence_injected_panics();
    let vm = vm();
    const TENANTS: usize = 24;
    const REQUESTS: usize = 3;
    // Victims: one tenant per fault kind, each faulted on its middle
    // request at a step it will definitely reach (tri(n) retires well
    // over 4n instructions for these sizes).
    let victims: [(usize, FaultKind); 4] = [
        (3, FaultKind::Trap),
        (7, FaultKind::Stall),
        (11, FaultKind::WorkerPanic),
        (15, FaultKind::OutOfFuel),
    ];
    let mut plan = FaultPlan::new();
    for (t, kind) in victims {
        plan = plan.inject(&format!("t{t}"), 1, kind, 20);
    }
    assert_eq!(plan.len(), 4);

    let server = Server::with_faults(vm.clone(), config(4, 256), plan);
    for t in 0..TENANTS {
        server
            .register(&format!("t{t}"), TenantConfig::default())
            .unwrap();
    }
    let mut tickets: Vec<(usize, usize, Ticket)> = Vec::new();
    for r in 0..REQUESTS {
        for t in 0..TENANTS {
            let ticket = server
                .submit_within(
                    &format!("t{t}"),
                    Request::new("tri", workload(t, r)),
                    Duration::from_secs(10),
                )
                .unwrap();
            tickets.push((t, r, ticket));
        }
    }
    let mut responses: Vec<Vec<Option<com_vm::server::Response>>> =
        vec![vec![None; REQUESTS]; TENANTS];
    for (t, r, ticket) in tickets {
        responses[t][r] = Some(ticket.wait());
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, (TENANTS * REQUESTS) as u64);
    assert_eq!(stats.faults_injected, 4);
    let report = server.drain(Duration::from_secs(10));
    assert_eq!(
        report.sessions.len(),
        TENANTS,
        "every session must come back"
    );

    let victim_set: Vec<usize> = victims.iter().map(|(t, _)| *t).collect();
    for (t, tenant_responses) in responses.iter().enumerate() {
        let name = format!("t{t}");
        let session = &report
            .sessions
            .iter()
            .find(|(n, _)| *n == name)
            .expect("drained session")
            .1;
        if victim_set.contains(&t) {
            // The faulted request surfaces its planned typed error...
            let kind = victims.iter().find(|(v, _)| *v == t).unwrap().1;
            let resp = tenant_responses[1].as_ref().unwrap();
            match (&resp.outcome, kind) {
                (Err(ServeError::Vm(VmError::Trap(trap))), FaultKind::Trap) => {
                    assert_eq!(trap.stats.instructions, 20, "honest partial stats");
                }
                (Err(ServeError::Vm(VmError::Stalled { .. })), FaultKind::Stall) => {}
                (Err(ServeError::Vm(VmError::EnginePanic { message })), FaultKind::WorkerPanic) => {
                    assert!(message.contains("injected worker panic"));
                }
                (Err(ServeError::Vm(VmError::OutOfFuel { budget: 20 })), FaultKind::OutOfFuel) => {}
                other => panic!("tenant {t}: expected {kind:?} error, got {other:?}"),
            }
            // ...and the tenant's *other* requests still answer
            // correctly: the fault ended one call, not the session.
            for r in [0usize, 2] {
                let resp = tenant_responses[r].as_ref().unwrap();
                assert_eq!(
                    resp.result_as::<i64>().unwrap(),
                    (1..=workload(t, r)).sum::<i64>(),
                    "tenant {t} request {r} after its fault"
                );
            }
        } else {
            // Unaffected tenants: every request's result AND stats delta
            // bit-identical to the solo fault-free run, and the drained
            // session's cumulative stats too.
            let (solo, solo_total) = solo_baseline(&vm, t, REQUESTS);
            for r in 0..REQUESTS {
                let resp = tenant_responses[r].as_ref().unwrap();
                let word = *resp.outcome.as_ref().expect("unaffected request failed");
                assert_eq!(word, solo[r].0, "tenant {t} request {r} result diverged");
                assert_eq!(
                    resp.stats, solo[r].1,
                    "tenant {t} request {r} stats diverged from solo"
                );
                assert_eq!(resp.attempts, 1, "unaffected requests never retry");
            }
            assert_eq!(
                session.stats(),
                solo_total,
                "tenant {t}: drained session stats diverged from solo"
            );
        }
    }
}

#[test]
fn queue_full_backpressure_fires_at_the_configured_depth() {
    let vm = vm();
    const DEPTH: usize = 4;
    let server = Server::start(vm, config(1, DEPTH));
    server.register("hog", TenantConfig::default()).unwrap();
    // One long-running request occupies the single worker...
    let running = server
        .submit("hog", Request::new("spin", 50_000_000i64))
        .unwrap();
    // ...wait until the worker claims it so it no longer counts against
    // the queue depth.
    while server.queued() > 0 {
        std::thread::yield_now();
    }
    // Now exactly DEPTH more are admitted, and the next is refused.
    let queued: Vec<Ticket> = (0..DEPTH)
        .map(|_| server.submit("hog", Request::new("tri", 5i64)).unwrap())
        .collect();
    match server.submit("hog", Request::new("tri", 5i64)) {
        Err(SubmitError::QueueFull { depth: DEPTH }) => {}
        other => panic!("expected QueueFull at depth {DEPTH}, got {other:?}"),
    }
    assert_eq!(server.stats().max_queued, DEPTH);
    // Equal priority sheds nothing — the refusal above must not have
    // evicted anyone.
    assert_eq!(server.stats().shed, 0);
    // Shutdown still resolves every ticket.
    let report = server.drain(Duration::from_millis(10));
    assert_eq!(report.sessions.len(), 1);
    let mut outcomes = vec![running.wait().outcome];
    outcomes.extend(queued.into_iter().map(|t| t.wait().outcome));
    for o in outcomes {
        assert!(
            o.is_ok() || o == Err(ServeError::Cancelled),
            "every ticket resolves done-or-cancelled, got {o:?}"
        );
    }
}

#[test]
fn overload_sheds_strictly_lower_priority_work_only() {
    let vm = vm();
    const DEPTH: usize = 3;
    let server = Server::start(vm, config(1, DEPTH));
    server.register("hog", TenantConfig::default()).unwrap();
    let running = server
        .submit("hog", Request::new("spin", 50_000_000i64))
        .unwrap();
    while server.queued() > 0 {
        std::thread::yield_now();
    }
    let low: Vec<Ticket> = (0..DEPTH)
        .map(|_| {
            server
                .submit("hog", Request::new("tri", 5i64).priority(Priority::Low))
                .unwrap()
        })
        .collect();
    // A High submission sheds the most recent Low; a Low submission
    // outranks nothing and is refused.
    let high = server
        .submit("hog", Request::new("tri", 7i64).priority(Priority::High))
        .unwrap();
    match server.submit("hog", Request::new("tri", 5i64).priority(Priority::Low)) {
        Err(SubmitError::QueueFull { .. }) => {}
        other => panic!("expected QueueFull for the Low request, got {other:?}"),
    }
    assert_eq!(server.stats().shed, 1);
    // The most recently submitted Low request was the victim.
    let shed_count = low
        .into_iter()
        .filter(|t| {
            matches!(
                t.try_wait().map(|r| r.outcome),
                Some(Err(ServeError::Shed {
                    priority: Priority::Low
                }))
            )
        })
        .count();
    assert_eq!(shed_count, 1, "exactly one Low request must be shed");
    drop(running);
    drop(high);
    let report = server.drain(Duration::from_millis(10));
    assert_eq!(report.stats.shed, 1);
}

#[test]
fn drain_completes_or_cancels_everything_and_loses_no_session() {
    let vm = vm();
    let server = Server::start(vm, config(2, 64));
    for t in 0..6 {
        server
            .register(&format!("t{t}"), TenantConfig::default())
            .unwrap();
    }
    // A mix of fast and effectively-unbounded work.
    let mut tickets = Vec::new();
    for t in 0..6 {
        let name = format!("t{t}");
        tickets.push(server.submit(&name, Request::new("tri", 10i64)).unwrap());
        tickets.push(
            server
                .submit(&name, Request::new("spin", 500_000_000i64))
                .unwrap(),
        );
    }
    let report = server.drain(Duration::from_millis(50));
    // Every ticket resolved: fast ones done, unbounded ones cancelled.
    let mut done = 0;
    let mut cancelled = 0;
    for t in tickets {
        match t.wait().outcome {
            Ok(_) => done += 1,
            Err(ServeError::Cancelled) => cancelled += 1,
            other => panic!("drain left a ticket in state {other:?}"),
        }
    }
    assert_eq!(done + cancelled, 12);
    assert!(cancelled >= 6, "the unbounded spins cannot finish in grace");
    assert_eq!(report.stats.cancelled, cancelled as u64);
    // No session lost, and every one is immediately re-callable.
    assert_eq!(report.sessions.len(), 6);
    for (name, mut session) in report.sessions {
        assert!(!session.in_flight(), "{name}: drain left a call in flight");
        assert_eq!(session.call::<i64>("tri", 4).unwrap(), 10, "{name}");
    }
}

#[test]
fn idempotent_requests_recover_from_transient_faults_via_retry() {
    FaultPlan::silence_injected_panics();
    let vm = vm();
    // Stall, then panic, injected into the first attempts of two
    // idempotent requests: both recover on retry with the right answer.
    let plan = FaultPlan::new()
        .inject("a", 0, FaultKind::Stall, 20)
        .inject("a", 1, FaultKind::WorkerPanic, 20);
    let server = Server::with_faults(vm, config(2, 64), plan);
    server.register("a", TenantConfig::default()).unwrap();
    let expected: i64 = (1..=40).sum();
    for r in 0..2 {
        let resp = server
            .submit("a", Request::new("tri", 40i64).idempotent(true))
            .unwrap()
            .wait();
        assert_eq!(
            resp.result_as::<i64>().unwrap(),
            expected,
            "request {r} must recover via retry"
        );
        assert_eq!(resp.attempts, 2, "request {r}: one retry after the fault");
    }
    let stats = server.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.faults_injected, 2);
    assert_eq!(stats.completed, 2);
    // The same faults on non-idempotent requests are terminal: the
    // attempt had already executed, so retrying is forbidden.
    let plan = FaultPlan::new().inject("b", 0, FaultKind::Stall, 20);
    let server2 = Server::with_faults(Vm::new(PROGRAM).unwrap(), config(2, 64), plan);
    server2.register("b", TenantConfig::default()).unwrap();
    let resp = server2
        .submit("b", Request::new("tri", 40i64))
        .unwrap()
        .wait();
    match resp.outcome {
        Err(ServeError::Vm(VmError::Stalled { .. })) => {}
        other => panic!("non-idempotent in-flight call must not retry, got {other:?}"),
    }
    assert_eq!(resp.attempts, 1);
    assert_eq!(server2.stats().retries, 0);
    drop(server);
    drop(server2);
}

#[test]
fn submit_within_blocks_until_space_or_times_out() {
    let vm = vm();
    let server = Server::start(vm, config(1, 1));
    server.register("a", TenantConfig::default()).unwrap();
    let running = server
        .submit("a", Request::new("spin", 2_000_000i64))
        .unwrap();
    while server.queued() > 0 {
        std::thread::yield_now();
    }
    let queued = server.submit("a", Request::new("tri", 5i64)).unwrap();
    // The queue (depth 1) is now full; a blocking submit waits for the
    // worker to pop the queued request and then gets in.
    let waited = server
        .submit_within("a", Request::new("tri", 6i64), Duration::from_secs(10))
        .unwrap();
    assert_eq!(waited.wait().result_as::<i64>().unwrap(), 21);
    assert_eq!(queued.wait().result_as::<i64>().unwrap(), 15);
    assert!(running.wait().is_ok());
    // With the worker wedged on an unbounded spin and the queue full, a
    // short wait gives up with the typed timeout.
    let wedge = server
        .submit("a", Request::new("spin", 500_000_000i64))
        .unwrap();
    while server.queued() > 0 {
        std::thread::yield_now();
    }
    let fill = server.submit("a", Request::new("tri", 5i64)).unwrap();
    match server.submit_within("a", Request::new("tri", 6i64), Duration::from_millis(20)) {
        Err(SubmitError::Timeout { waited }) => {
            assert!(waited >= Duration::from_millis(20));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    drop((wedge, fill));
    let _ = server.drain(Duration::from_millis(10));
}
