//! A parallel worker-pool executor: drain any number of in-flight
//! sessions across a fixed set of OS threads.
//!
//! The pool exists because sessions are **architecturally isolated**:
//! each owns its object space, context cache and statistics, and shares
//! only the immutable pre-decoded image. A tenant's [`CycleStats`]
//! therefore depend solely on its own instruction stream — never on
//! which worker ran a slice, in what order slices interleaved, or how a
//! yielded session migrated between threads. That is what lets the
//! executor promise *bit-identical* results and statistics to solo (or
//! single-threaded [`Scheduler`](crate::Scheduler)) execution while
//! using every core: parallelism costs nothing in fidelity.
//!
//! Shape: one shared **injector deque** seeds the run; each worker
//! drains its **local deque** front-to-back (preserving round-robin
//! fairness among the tenants it holds), pushes tenants that yield back
//! onto its own tail, and — when it runs dry — pulls from the injector
//! or **steals** from the tail of another worker's deque. Finished
//! tenants flow back to the caller over a channel. All of it is plain
//! `std` (`Mutex`/`Condvar`/`mpsc`, `thread::scope`); there is no
//! dependency to vendor and no unsafe code.
//!
//! [`CycleStats`]: com_core::CycleStats

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Duration;

use com_mem::Word;

use crate::error::panic_message;
use crate::{FromWord, Outcome, Session, VmError};

/// A pre-slice hook for fault injection: called with (tenant index,
/// slices so far) before every resume; a panicking hook lands on the
/// worker exactly like an engine panic would. Tests and the fault
/// harness use it to prove panic containment.
pub(crate) type SliceHook<'a> = &'a (dyn Fn(usize, u64) + Sync);

/// One tenant drained by [`ParallelExecutor::run`], returned in spawn
/// order.
#[derive(Debug)]
pub struct TenantRun {
    /// The session, back from the pool: inspect
    /// [`last_run`](Session::last_run) and statistics on a completed
    /// tenant, or keep calling it — a trapped tenant's session is
    /// unwound and stays serviceable (its `last_run` is cleared; the
    /// trapped call's accounting is in [`error`](Self::error)).
    pub session: Session,
    /// The raw result word, if the call completed.
    pub result: Option<Word>,
    /// The error that ended the call, if it trapped (or stalled, or its
    /// worker panicked): [`VmError::Trap`](crate::VmError::Trap) carries
    /// the cause plus the unwound call's partial
    /// [`CycleStats`](com_core::CycleStats); a caught worker panic
    /// surfaces as [`VmError::EnginePanic`](crate::VmError::EnginePanic).
    /// A tenant's failure never disturbs a sibling — every other
    /// tenant's results and statistics stay bit-identical to solo runs.
    pub error: Option<VmError>,
    /// Resume slices the tenant consumed.
    pub slices: u64,
    /// Times the tenant resumed on a different worker than its previous
    /// slice — direct evidence of cross-thread session movement.
    pub migrations: u64,
}

impl TenantRun {
    /// The completed result, converted.
    ///
    /// # Errors
    ///
    /// [`VmError::Type`] if the result does not convert.
    pub fn result_as<R: FromWord>(&self) -> Result<Option<R>, VmError> {
        match self.result {
            Some(w) => Ok(Some(R::from_word(w)?)),
            None => Ok(None),
        }
    }
}

/// A task in flight through the pool.
struct Task {
    index: usize,
    session: Session,
    slices: u64,
    migrations: u64,
    last_worker: Option<usize>,
}

/// A task that left the pool: completed, trapped, or stalled.
struct Finished {
    task: Task,
    result: Option<Word>,
    error: Option<VmError>,
}

/// State shared by every worker for one [`ParallelExecutor::run`].
struct Shared {
    /// Seed queue: tasks not yet claimed by any worker.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: the owner pops the front and pushes yields on
    /// the back; thieves steal from the back.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Parking lot for workers that found no runnable task.
    idle: Mutex<()>,
    wake: Condvar,
    /// Tasks still inside the pool; 0 tells every worker to exit.
    remaining: AtomicUsize,
    /// Successful steals (observability; surfaced by the bench).
    steals: AtomicU64,
}

/// A fixed pool of worker threads that drains in-flight resumable
/// sessions, preserving the cooperative [`Session::resume`] yield
/// cadence — so every tenant finishes with a result and `CycleStats`
/// bit-identical to running alone (asserted by the `bench_parallel`
/// pipeline and this module's tests).
///
/// ```
/// # fn main() -> Result<(), com_vm::VmError> {
/// let vm = com_vm::Vm::new(
///     "class SmallInteger method tri ^self * (self + 1) / 2 end end",
/// )?;
/// let mut tenants = Vec::new();
/// for n in [10i64, 100, 1000, 10000] {
///     let mut s = vm.session()?;
///     s.call_start("tri", n)?;
///     tenants.push(s);
/// }
/// let pool = com_vm::ParallelExecutor::new(4, 500);
/// let runs = pool.run(tenants);
/// assert_eq!(runs[3].result_as::<i64>()?, Some(50_005_000));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    workers: usize,
    slice: u64,
}

impl ParallelExecutor {
    /// A pool of `workers` threads granting `slice` instructions per
    /// resume. A zero `slice` cannot make progress; rather than spin,
    /// [`run`](Self::run) reports every tenant as [`VmError::Stalled`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (nothing could ever run).
    pub fn new(workers: usize, slice: u64) -> ParallelExecutor {
        assert!(workers > 0, "a pool needs at least one worker");
        ParallelExecutor { workers, slice }
    }

    /// A pool sized to the host: one worker per available core.
    pub fn host_sized(slice: u64) -> ParallelExecutor {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        ParallelExecutor::new(workers, slice)
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Instructions granted per resume slice.
    pub fn slice(&self) -> u64 {
        self.slice
    }

    /// Drains every session to completion (or trap) across the pool and
    /// returns them in spawn order. Sessions should have a resumable
    /// call in flight (see [`Session::call_start`]); one that does not
    /// comes straight back with [`VmError::NoCallInProgress`] as its
    /// [`TenantRun::error`]. Per-tenant conditions — traps, stalls, an
    /// idle session — are recorded per tenant, exactly like the
    /// single-threaded scheduler: one tenant's failure never disturbs
    /// another, and **no session is ever lost** — every one comes back
    /// in the returned runs.
    ///
    /// Even a **panic** on a worker thread is contained per tenant: the
    /// slice is wrapped in `catch_unwind`, the panicking tenant's call
    /// is cancelled and reported as [`VmError::EnginePanic`], and every
    /// other tenant (including those queued on the panicking worker)
    /// drains normally — one wedged tenant cannot poison the pool.
    pub fn run(&self, sessions: Vec<Session>) -> Vec<TenantRun> {
        self.run_counting_steals(sessions).0
    }

    /// [`run`](Self::run), also returning the total successful steals —
    /// tests and the bench use it to show the stealing path is real.
    pub fn run_counting_steals(&self, sessions: Vec<Session>) -> (Vec<TenantRun>, u64) {
        self.run_inner(sessions, None)
    }

    /// [`run_counting_steals`](Self::run_counting_steals) with a fault
    /// hook invoked before every slice (see [`SliceHook`]) — the panic
    /// containment tests drive injected panics through it.
    #[cfg(test)]
    pub(crate) fn run_hooked(
        &self,
        sessions: Vec<Session>,
        hook: SliceHook<'_>,
    ) -> (Vec<TenantRun>, u64) {
        self.run_inner(sessions, Some(hook))
    }

    fn run_inner(
        &self,
        sessions: Vec<Session>,
        hook: Option<SliceHook<'_>>,
    ) -> (Vec<TenantRun>, u64) {
        let total = sessions.len();
        if total == 0 {
            return (Vec::new(), 0);
        }
        let mut out: Vec<Option<TenantRun>> = (0..total).map(|_| None).collect();
        let mut runnable: VecDeque<Task> = VecDeque::new();
        for (index, session) in sessions.into_iter().enumerate() {
            if session.in_flight() {
                runnable.push_back(Task {
                    index,
                    session,
                    slices: 0,
                    migrations: 0,
                    last_worker: None,
                });
            } else {
                // Nothing to resume: hand the session straight back with
                // a per-tenant error instead of failing (and dropping)
                // the whole batch.
                out[index] = Some(TenantRun {
                    session,
                    result: None,
                    error: Some(VmError::NoCallInProgress),
                    slices: 0,
                    migrations: 0,
                });
            }
        }
        if runnable.is_empty() {
            return (
                out.into_iter()
                    .map(|t| t.expect("all tenants were idle"))
                    .collect(),
                0,
            );
        }
        let in_pool = runnable.len();
        let shared = Shared {
            injector: Mutex::new(runnable),
            locals: (0..self.workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            remaining: AtomicUsize::new(in_pool),
            steals: AtomicU64::new(0),
        };
        let (tx, rx) = mpsc::channel::<Finished>();
        std::thread::scope(|scope| {
            for w in 0..self.workers {
                let shared = &shared;
                let tx = tx.clone();
                let slice = self.slice;
                scope.spawn(move || worker_loop(w, slice, shared, &tx, hook));
            }
            drop(tx);
            // Every task leaves the pool exactly once; when the last
            // worker exits, the channel closes and this loop ends.
            for fin in rx {
                let slot = &mut out[fin.task.index];
                *slot = Some(TenantRun {
                    session: fin.task.session,
                    result: fin.result,
                    error: fin.error,
                    slices: fin.task.slices,
                    migrations: fin.task.migrations,
                });
            }
        });
        (
            out.into_iter()
                .map(|t| t.expect("every spawned tenant leaves the pool"))
                .collect(),
            shared.steals.load(Ordering::Relaxed),
        )
    }
}

/// One worker: claim a task (own deque, then injector, then steal), give
/// it one slice, route it back into the pool or out through the channel.
fn worker_loop(
    w: usize,
    slice: u64,
    shared: &Shared,
    tx: &mpsc::Sender<Finished>,
    hook: Option<SliceHook<'_>>,
) {
    loop {
        if shared.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let Some(mut task) = claim(w, shared) else {
            // Nothing runnable. Park briefly: a yield push or the drain
            // finishing notifies; the timeout bounds any lost wakeup.
            let guard = shared.idle.lock().expect("idle lock");
            if shared.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            drop(
                shared
                    .wake
                    .wait_timeout(guard, Duration::from_micros(200))
                    .expect("idle wait"),
            );
            continue;
        };
        if task.last_worker.is_some_and(|prev| prev != w) {
            task.migrations += 1;
        }
        task.last_worker = Some(w);
        task.slices += 1;
        // Contain panics to the tenant: an engine invariant violation (or
        // an injected fault) must not unwind into the scoped pool, where
        // it would poison every lock and abort the whole drain.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(h) = hook {
                h(task.index, task.slices);
            }
            task.session.resume_raw_guarded(slice)
        }));
        match outcome {
            Ok(Ok(Outcome::Yielded)) => {
                shared.locals[w]
                    .lock()
                    .expect("local deque lock")
                    .push_back(task);
                shared.wake.notify_one();
            }
            Ok(Ok(Outcome::Done(word))) => finish(
                shared,
                tx,
                Finished {
                    task,
                    result: Some(word),
                    error: None,
                },
            ),
            // Includes Stalled: a yield that retired nothing (zero
            // slice, or a wedged machine) would requeue forever.
            Ok(Err(e)) => finish(
                shared,
                tx,
                Finished {
                    task,
                    result: None,
                    error: Some(e),
                },
            ),
            Err(payload) => {
                let message = panic_message(&*payload);
                // Abandon the interrupted call so the session comes back
                // re-callable; if the machine is wedged enough that even
                // the unwind panics, still hand the session back.
                let _ = catch_unwind(AssertUnwindSafe(|| task.session.cancel()));
                finish(
                    shared,
                    tx,
                    Finished {
                        task,
                        result: None,
                        error: Some(VmError::EnginePanic { message }),
                    },
                );
            }
        }
    }
}

/// Claim the next runnable task for worker `w`: own deque front, then
/// the injector, then steal from the back of the busiest sibling.
fn claim(w: usize, shared: &Shared) -> Option<Task> {
    if let Some(t) = shared.locals[w]
        .lock()
        .expect("local deque lock")
        .pop_front()
    {
        return Some(t);
    }
    if let Some(t) = shared.injector.lock().expect("injector lock").pop_front() {
        return Some(t);
    }
    // Steal from the sibling with the most queued work, from the back.
    // Taking a victim's only queued task is safe: a task is never in a
    // deque while it runs, and an owner that finds its deque empty falls
    // back to the injector or steals in turn — nothing is ever lost.
    let n = shared.locals.len();
    let mut victim: Option<(usize, usize)> = None;
    for v in 0..n {
        if v == w {
            continue;
        }
        let len = shared.locals[v].lock().expect("sibling deque lock").len();
        if len > 0 && victim.is_none_or(|(_, best)| len > best) {
            victim = Some((v, len));
        }
    }
    let (v, _) = victim?;
    let stolen = shared.locals[v]
        .lock()
        .expect("victim deque lock")
        .pop_back();
    if stolen.is_some() {
        shared.steals.fetch_add(1, Ordering::Relaxed);
    }
    stolen
}

/// Route a task out of the pool; the last one wakes every parked worker
/// so the pool can exit.
fn finish(shared: &Shared, tx: &mpsc::Sender<Finished>, fin: Finished) {
    // The receiver outlives every worker (it drains until all senders
    // drop), so the send cannot fail while a worker runs.
    tx.send(fin).expect("result channel open");
    if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        shared.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::FaultPlan;
    use crate::Vm;

    const TRI: &str = r#"
        class SmallInteger
          method tri | acc |
            acc := 0. 1 to: self do: [ :i | acc := acc + i ]. ^acc
          end
        end
    "#;

    /// Satellite regression (ISSUE 6): a worker panic is contained to
    /// its tenant — the panicking tenant comes back with
    /// `VmError::EnginePanic` and a serviceable session, and every
    /// sibling drains bit-identically to solo.
    #[test]
    fn worker_panic_is_contained_per_tenant() {
        FaultPlan::silence_injected_panics();
        let vm = Vm::new(TRI).unwrap();
        let sizes = [9i64, 14, 21, 33, 47];
        let solos: Vec<_> = sizes
            .iter()
            .map(|n| {
                let mut s = vm.session().unwrap();
                let _ = s.call::<i64>("tri", *n).unwrap();
                let run = s.last_run().unwrap();
                (run.result, run.stats)
            })
            .collect();

        let mut sessions = Vec::new();
        for n in sizes {
            let mut s = vm.session().unwrap();
            s.call_start("tri", n).unwrap();
            sessions.push(s);
        }
        // The panicking tenant: a perfectly healthy call whose second
        // slice is interrupted by an injected worker panic.
        let mut bad = vm.session().unwrap();
        bad.call_start("tri", 10_000i64).unwrap();
        sessions.push(bad);
        let bad_index = sessions.len() - 1;

        let pool = ParallelExecutor::new(3, 17);
        let (runs, _) = pool.run_hooked(sessions, &move |index, slices| {
            if index == bad_index && slices == 2 {
                panic!("{}", crate::server::injector::INJECTED_PANIC);
            }
        });

        match &runs[bad_index].error {
            Some(VmError::EnginePanic { message }) => {
                assert!(message.contains("injected worker panic"));
            }
            other => panic!("expected EnginePanic, got {other:?}"),
        }
        assert_eq!(runs[bad_index].result, None);
        for (i, solo) in solos.iter().enumerate() {
            assert_eq!(runs[i].error, None, "sibling {i} disturbed");
            assert_eq!(runs[i].result, Some(solo.0));
            assert_eq!(
                runs[i].session.last_run().unwrap().stats,
                solo.1,
                "sibling {i}: a worker panic changed its statistics"
            );
        }
        // The panicked tenant's session is cancelled and re-callable.
        let mut revived = runs.into_iter().nth(bad_index).unwrap().session;
        assert!(!revived.in_flight());
        assert_eq!(revived.call::<i64>("tri", 4).unwrap(), 10);
    }

    /// Every tenant panicking at once still drains the pool: no lock is
    /// poisoned, every session comes back.
    #[test]
    fn all_tenants_panicking_does_not_wedge_the_pool() {
        FaultPlan::silence_injected_panics();
        let vm = Vm::new(TRI).unwrap();
        let mut sessions = Vec::new();
        for _ in 0..6 {
            let mut s = vm.session().unwrap();
            s.call_start("tri", 10_000i64).unwrap();
            sessions.push(s);
        }
        let pool = ParallelExecutor::new(2, 25);
        let (runs, _) = pool.run_hooked(sessions, &|_, _| {
            panic!("{}", crate::server::injector::INJECTED_PANIC);
        });
        assert_eq!(runs.len(), 6, "a session was lost");
        for run in runs {
            assert!(matches!(run.error, Some(VmError::EnginePanic { .. })));
        }
    }
}
