//! Typed conversions at the embedding boundary.
//!
//! The machine speaks tagged [`Word`]s; embedders speak Rust. [`ToWord`]
//! carries receivers and arguments in, [`FromWord`] carries results out —
//! `session.call::<i64>("factorial", 12)?` instead of wrapping and
//! unwrapping raw words by hand.

use com_mem::Word;
use com_obj::AtomTable;

use crate::VmError;

/// A Rust value that can cross into the machine as a tagged word.
pub trait ToWord {
    /// The word this value becomes.
    fn to_word(&self) -> Word;
}

impl ToWord for Word {
    fn to_word(&self) -> Word {
        *self
    }
}

impl ToWord for i64 {
    fn to_word(&self) -> Word {
        Word::Int(*self)
    }
}

impl ToWord for i32 {
    fn to_word(&self) -> Word {
        Word::Int(i64::from(*self))
    }
}

impl ToWord for u32 {
    fn to_word(&self) -> Word {
        Word::Int(i64::from(*self))
    }
}

impl ToWord for f64 {
    fn to_word(&self) -> Word {
        Word::Float(*self)
    }
}

impl ToWord for bool {
    fn to_word(&self) -> Word {
        Word::Atom(if *self {
            AtomTable::TRUE
        } else {
            AtomTable::FALSE
        })
    }
}

impl<T: ToWord + ?Sized> ToWord for &T {
    fn to_word(&self) -> Word {
        (**self).to_word()
    }
}

/// A Rust value that can be read back out of a result word.
pub trait FromWord: Sized {
    /// Converts the word, or reports a [`VmError::Type`] mismatch.
    fn from_word(w: Word) -> Result<Self, VmError>;
}

impl FromWord for Word {
    fn from_word(w: Word) -> Result<Self, VmError> {
        Ok(w)
    }
}

impl FromWord for i64 {
    fn from_word(w: Word) -> Result<Self, VmError> {
        w.as_int().ok_or(VmError::Type {
            expected: "i64",
            got: w,
        })
    }
}

impl FromWord for f64 {
    fn from_word(w: Word) -> Result<Self, VmError> {
        w.as_float().ok_or(VmError::Type {
            expected: "f64",
            got: w,
        })
    }
}

impl FromWord for bool {
    fn from_word(w: Word) -> Result<Self, VmError> {
        match w {
            Word::Atom(a) => AtomTable::truthiness(a).ok_or(VmError::Type {
                expected: "bool",
                got: w,
            }),
            Word::Int(i) => Ok(i != 0),
            other => Err(VmError::Type {
                expected: "bool",
                got: other,
            }),
        }
    }
}

impl FromWord for () {
    fn from_word(_w: Word) -> Result<Self, VmError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(42i64.to_word(), Word::Int(42));
        assert_eq!(i64::from_word(Word::Int(42)).unwrap(), 42);
        assert_eq!(f64::from_word(Word::Float(1.5)).unwrap(), 1.5);
        assert_eq!(true.to_word(), Word::Atom(AtomTable::TRUE));
        assert!(bool::from_word(Word::Atom(AtomTable::TRUE)).unwrap());
        assert!(!bool::from_word(Word::Atom(AtomTable::FALSE)).unwrap());
        assert!(bool::from_word(Word::Int(3)).unwrap());
    }

    #[test]
    fn mismatches_are_typed_errors() {
        match i64::from_word(Word::Float(1.0)) {
            Err(VmError::Type {
                expected: "i64", ..
            }) => {}
            other => panic!("expected type error, got {other:?}"),
        }
    }
}
