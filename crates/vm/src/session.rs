//! Per-tenant sessions: one isolated executor over a shared image.

use std::sync::Arc;

use com_core::{
    CtxCacheStats, CycleStats, GcTotals, LoadedImage, Machine, MachineConfig, RunOutcome, RunResult,
};
use com_mem::{ObjectSpace, Word};

use crate::{FromWord, ToWord, VmError};

/// The outcome of one [`Session::resume`] slice: the call finished with a
/// typed result, or the budget ran out and the call can be resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The call completed with this result.
    Done(T),
    /// The budget was exhausted; the call is still in flight and the next
    /// [`Session::resume`] continues it exactly where it stopped.
    Yielded,
}

impl<T> Outcome<T> {
    /// The completed result, if the call finished.
    pub fn done(self) -> Option<T> {
        match self {
            Outcome::Done(t) => Some(t),
            Outcome::Yielded => None,
        }
    }

    /// Whether the call is still in flight.
    pub fn is_yielded(&self) -> bool {
        matches!(self, Outcome::Yielded)
    }
}

/// One tenant's isolated executor: a private machine (object space,
/// context cache, statistics) booted from a shared [`LoadedImage`].
///
/// Sessions are cheap — spawning one stores the image's code words into a
/// fresh object space and binds the image's pre-decoded method bodies; no
/// compilation or decoding happens. Any number of sessions run over one
/// image; each owns all of its mutable state, so they are fully isolated
/// (and may run on different threads).
///
/// Two call styles:
///
/// * **One-shot**: [`call`](Self::call)/[`call_with`](Self::call_with)
///   run to completion within the session's [step
///   limit](Self::set_step_limit) and convert the result.
/// * **Resumable**: [`call_start`](Self::call_start) then
///   [`resume`](Self::resume) with an explicit budget, which returns
///   [`Outcome::Yielded`] instead of an error when the budget runs out —
///   the cooperative primitive the [`Scheduler`](crate::Scheduler)
///   round-robins over.
#[derive(Debug)]
pub struct Session {
    machine: Machine,
    image: Arc<LoadedImage>,
    step_limit: u64,
    in_flight: bool,
    last_run: Option<RunResult>,
    /// Cumulative machine stats at the start of the current (or most
    /// recent) call, so a trap can report the unwound call's *partial*
    /// stats as a delta.
    call_base: CycleStats,
}

impl Session {
    pub(crate) fn boot(image: Arc<LoadedImage>, config: MachineConfig) -> Result<Session, VmError> {
        let machine = Machine::boot(config, &image)?;
        Ok(Session {
            machine,
            image,
            step_limit: u64::MAX,
            in_flight: false,
            last_run: None,
            call_base: CycleStats::default(),
        })
    }

    /// Wraps a machine error from a *running* call as [`VmError::Trap`]
    /// with the unwound call's partial [`CycleStats`]. The engine's
    /// `run_for` already routed the trap exit through
    /// `Machine::abort_send`, so by the time this runs the session is
    /// re-callable and the trapped call graph is unrooted.
    fn wrap_trap(&self, cause: com_core::MachineError) -> VmError {
        VmError::trap(cause, self.machine.stats().since(&self.call_base))
    }

    // ------------------------------------------------------------------
    // One-shot typed calls
    // ------------------------------------------------------------------

    /// Sends `selector` to `receiver` and runs to completion, converting
    /// the result.
    ///
    /// ```
    /// # fn main() -> Result<(), com_vm::VmError> {
    /// let vm = com_vm::Vm::new(
    ///     "class SmallInteger method double ^self + self end end",
    /// )?;
    /// let mut session = vm.session()?;
    /// assert_eq!(session.call::<i64>("double", 21)?, 42);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`VmError::UnknownSelector`], any machine trap,
    /// [`VmError::OutOfFuel`] if the session's step limit runs out, or
    /// [`VmError::Type`] if the result does not convert to `R`.
    pub fn call<R: FromWord>(
        &mut self,
        selector: &str,
        receiver: impl ToWord,
    ) -> Result<R, VmError> {
        self.call_with(selector, receiver, &[])
    }

    /// [`call`](Self::call) with arguments (as words; lift Rust values
    /// with [`ToWord::to_word`]).
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call).
    pub fn call_with<R: FromWord>(
        &mut self,
        selector: &str,
        receiver: impl ToWord,
        args: &[Word],
    ) -> Result<R, VmError> {
        let out = self.send_raw(selector, receiver.to_word(), args, self.step_limit)?;
        R::from_word(out.result)
    }

    /// The untyped engine call: sends `selector` and returns the full
    /// [`RunResult`] (result word plus cycle accounting). This is what the
    /// workload harnesses drive.
    ///
    /// # Errors
    ///
    /// [`VmError::CallInProgress`] if a resumable call is in flight,
    /// [`VmError::UnknownSelector`], [`VmError::OutOfFuel`] on budget
    /// exhaustion, or [`VmError::Trap`] for any machine trap.
    ///
    /// Every error path leaves the session **clean**: the failed call's
    /// graph (entry method, contexts, result cell) is dropped from the
    /// engine's roots via `Machine::abort_send` — traps unwind inside the
    /// engine; budget exhaustion is unwound here before `OutOfFuel` is
    /// reported — so the memory is reclaimable by the next collection and
    /// the next call behaves exactly as on a fresh session (same result,
    /// same [`CycleStats`] delta, same heap after a collection).
    pub fn send_raw(
        &mut self,
        selector: &str,
        receiver: Word,
        args: &[Word],
        max_steps: u64,
    ) -> Result<RunResult, VmError> {
        if self.in_flight {
            return Err(VmError::CallInProgress);
        }
        self.start(selector, receiver, args)?;
        match self.machine.run_for(max_steps) {
            Ok(RunOutcome::Done(r)) => {
                self.last_run = Some(r.clone());
                Ok(r)
            }
            Ok(RunOutcome::OutOfBudget) => {
                // A one-shot call cannot be resumed: drop the half-run
                // call graph instead of leaving it rooted forever.
                self.machine.abort_send();
                self.last_run = None;
                Err(VmError::OutOfFuel { budget: max_steps })
            }
            Err(e) => {
                self.last_run = None;
                Err(self.wrap_trap(e))
            }
        }
    }

    // ------------------------------------------------------------------
    // Resumable calls
    // ------------------------------------------------------------------

    /// Prepares a resumable send without running any instruction. Drive it
    /// with [`resume`](Self::resume).
    ///
    /// # Errors
    ///
    /// [`VmError::CallInProgress`] if one is already in flight,
    /// [`VmError::UnknownSelector`], or allocation traps.
    pub fn call_start(&mut self, selector: &str, receiver: impl ToWord) -> Result<(), VmError> {
        self.call_start_with(selector, receiver, &[])
    }

    /// [`call_start`](Self::call_start) with arguments.
    ///
    /// # Errors
    ///
    /// As [`call_start`](Self::call_start).
    pub fn call_start_with(
        &mut self,
        selector: &str,
        receiver: impl ToWord,
        args: &[Word],
    ) -> Result<(), VmError> {
        if self.in_flight {
            return Err(VmError::CallInProgress);
        }
        self.start(selector, receiver.to_word(), args)?;
        self.in_flight = true;
        Ok(())
    }

    /// Runs the in-flight call for at most `budget` instructions.
    ///
    /// Exhaustion is a yield, not an error: machine state (including
    /// [`CycleStats`]) stays consistent at the boundary, and a program
    /// driven by many small budgets finishes with results and statistics
    /// bit-identical to one uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`VmError::NoCallInProgress`] without a
    /// [`call_start`](Self::call_start), [`VmError::Type`] on result
    /// conversion, or [`VmError::Trap`] for any machine trap. A trap ends
    /// the call **cleanly**: the engine unwinds through
    /// `Machine::abort_send` before the error surfaces, so the trapped
    /// call graph (entry method, context chain, cache-resident blocks,
    /// result cell) is already unrooted — reclaimable by the next
    /// collection — and the session's next call behaves exactly as on a
    /// fresh session.
    pub fn resume<R: FromWord>(&mut self, budget: u64) -> Result<Outcome<R>, VmError> {
        match self.resume_raw(budget)? {
            Outcome::Done(w) => Ok(Outcome::Done(R::from_word(w)?)),
            Outcome::Yielded => Ok(Outcome::Yielded),
        }
    }

    /// [`resume`](Self::resume) returning the raw result word.
    ///
    /// # Errors
    ///
    /// As [`resume`](Self::resume), minus the conversion.
    pub fn resume_raw(&mut self, budget: u64) -> Result<Outcome<Word>, VmError> {
        if !self.in_flight {
            return Err(VmError::NoCallInProgress);
        }
        match self.machine.run_for(budget) {
            Ok(RunOutcome::Done(r)) => {
                self.in_flight = false;
                let w = r.result;
                self.last_run = Some(r);
                Ok(Outcome::Done(w))
            }
            Ok(RunOutcome::OutOfBudget) => Ok(Outcome::Yielded),
            Err(e) => {
                // The engine already unwound (run_for routes trap exits
                // through abort_send); record the call as over and report
                // the trap with its partial stats. `last_run` is cleared
                // so a stale earlier result can never be mistaken for
                // the trapped call's.
                self.in_flight = false;
                self.last_run = None;
                Err(self.wrap_trap(e))
            }
        }
    }

    /// [`resume_raw`](Self::resume_raw) with the executors' shared
    /// progress guard: a yield that retired no instruction can never
    /// finish (a zero budget, or a wedged machine), so it surfaces as
    /// [`VmError::Stalled`] instead of letting a driving loop reschedule
    /// it forever. The engine retires ≥ 1 instruction per non-zero
    /// budget, so a live call never trips this.
    pub(crate) fn resume_raw_guarded(&mut self, budget: u64) -> Result<Outcome<Word>, VmError> {
        let before = self.machine.stats().instructions;
        match self.resume_raw(budget)? {
            Outcome::Yielded if self.machine.stats().instructions == before => {
                Err(VmError::Stalled { slice: budget })
            }
            outcome => Ok(outcome),
        }
    }

    /// Whether a resumable call is currently in flight.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Abandons the in-flight call, if any: the engine drops the
    /// abandoned call graph (entry method, context chain, cache-resident
    /// blocks, result cell) from its GC roots, so the memory is
    /// reclaimable without waiting for the next call. The next call
    /// behaves exactly as on a fresh session — the same unwind traps take
    /// (`Machine::abort_send`).
    pub fn cancel(&mut self) {
        if self.in_flight {
            self.machine.abort_send();
            self.last_run = None;
        }
        self.in_flight = false;
    }

    fn start(&mut self, selector: &str, receiver: Word, args: &[Word]) -> Result<(), VmError> {
        let opcode = self.machine.selector(selector)?;
        self.call_base = self.machine.stats();
        if let Err(e) = self.machine.start_send(opcode, receiver, args) {
            // A failed start may have built part of the bootstrap call
            // graph; drop it rather than leave it rooted.
            self.machine.abort_send();
            return Err(e.into());
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Defaults and inspection
    // ------------------------------------------------------------------

    /// Caps one-shot calls at `limit` instructions (default: effectively
    /// unlimited). Exhaustion surfaces as [`VmError::OutOfFuel`].
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// The shared image this session was booted from.
    pub fn image(&self) -> &Arc<LoadedImage> {
        &self.image
    }

    /// The [`RunResult`] of the last completed call, if any. `None`
    /// until a call completes — and again after a call is unwound (trap,
    /// [`cancel`](Self::cancel), one-shot fuel exhaustion) until the
    /// next completion, so a stale result can never be mistaken for an
    /// unwound call's.
    pub fn last_run(&self) -> Option<&RunResult> {
        self.last_run.as_ref()
    }

    /// The underlying engine (full inspection surface).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable engine access (test setup, manual GC, privileged mode).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Cycle statistics so far (cumulative across calls).
    pub fn stats(&self) -> CycleStats {
        self.machine.stats()
    }

    /// Aggregate garbage-collection work so far.
    pub fn gc_totals(&self) -> GcTotals {
        self.machine.gc_totals()
    }

    /// ITLB statistics, if an ITLB is configured.
    pub fn itlb_stats(&self) -> Option<com_cache::CacheStats> {
        self.machine.itlb_stats()
    }

    /// Instruction cache statistics, if configured.
    pub fn icache_stats(&self) -> Option<com_cache::CacheStats> {
        self.machine.icache_stats()
    }

    /// Context cache statistics, if configured.
    pub fn ctx_cache_stats(&self) -> Option<CtxCacheStats> {
        self.machine.ctx_cache_stats()
    }

    /// The session's private object space.
    pub fn space(&self) -> &ObjectSpace {
        self.machine.space()
    }

    /// Resets all statistics (warmup boundary); contents stay resident.
    pub fn reset_stats(&mut self) {
        self.machine.reset_stats();
    }
}
