//! The supervisor: a long-lived worker pool serving an unbounded stream
//! of requests against named sessions.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use com_core::{CycleStats, MachineError};
use com_mem::Word;

use crate::error::panic_message;
use crate::server::admission::{Request, Response, ServeError, SubmitError, Ticket};
use crate::server::injector::{FaultKind, FaultPlan, InjectedFault, INJECTED_PANIC};
use crate::server::policy::{RetryPolicy, TenantConfig};
use crate::{Outcome, Session, Vm, VmError};

/// Sizing and policy for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads driving sessions. Defaults to the host's available
    /// parallelism.
    pub workers: usize,
    /// Admission-queue depth (queued requests across all tenants; the
    /// request each tenant is *currently running* does not count).
    /// Submissions beyond it shed lower-priority queued work or are
    /// refused with [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Instructions per scheduling turn for a weight-1 tenant; a
    /// tenant's turn is `base_slice ×`
    /// [`weight`](TenantConfig::weight). Deadlines, fuel budgets, and
    /// injected faults are all enforced at this cadence.
    pub base_slice: u64,
    /// Retry classification and backoff.
    pub retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(2, usize::from),
            queue_depth: 1024,
            base_slice: 1000,
            retry: RetryPolicy::default(),
        }
    }
}

/// Monotonic service counters, snapshot via [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted (a [`Ticket`] was issued).
    pub submitted: u64,
    /// Requests that completed with a result.
    pub completed: u64,
    /// Requests that ended in a terminal [`ServeError::Vm`].
    pub failed: u64,
    /// Requests evicted under overload ([`ServeError::Shed`]).
    pub shed: u64,
    /// Requests cancelled by shutdown ([`ServeError::Cancelled`]).
    pub cancelled: u64,
    /// Requests that missed their deadline.
    pub deadline_exceeded: u64,
    /// Retry attempts issued (beyond each request's first attempt).
    pub retries: u64,
    /// Faults fired from the [`FaultPlan`].
    pub faults_injected: u64,
    /// High-water mark of the admission queue.
    pub max_queued: usize,
}

/// What [`Server::drain`] hands back: every tenant's session — none
/// lost, whatever faults or cancellations occurred — plus the final
/// counters.
#[derive(Debug)]
pub struct DrainReport {
    /// Every registered tenant's session, sorted by name. Sessions keep
    /// their cumulative [`CycleStats`] and heap contents and are
    /// immediately re-callable.
    pub sessions: Vec<(String, Session)>,
    /// Final counters (including requests cancelled by the drain).
    pub stats: ServerStats,
}

/// One admitted request bound to its tenant.
#[derive(Debug)]
struct Job {
    tenant: String,
    seq: u64,
    req: Request,
    reply: mpsc::Sender<Response>,
    /// Attempts begun (1-based once running).
    attempts: u32,
    /// Instructions retired by the current attempt so far.
    steps_used: u64,
    /// Session stats at the current attempt's start (for honest deltas).
    attempt_base: CycleStats,
    submitted: Instant,
    deadline: Option<Instant>,
    /// Backoff gate: not schedulable before this.
    not_before: Option<Instant>,
    fault: Option<InjectedFault>,
}

#[derive(Debug)]
struct Tenant {
    cfg: TenantConfig,
    /// `None` while a worker is driving this tenant.
    session: Option<Session>,
    /// Admitted requests not yet started, FIFO.
    mailbox: VecDeque<Job>,
    /// The started (in-flight or backoff-gated) request, if any.
    current: Option<Job>,
    running: bool,
    /// Whether the tenant is already in `run_queue`.
    enqueued: bool,
    next_seq: u64,
}

#[derive(Debug, Default)]
struct State {
    tenants: HashMap<String, Tenant>,
    /// Round-robin order of tenants with runnable work.
    run_queue: VecDeque<String>,
    /// Jobs sitting in mailboxes (the admission-queue depth).
    queued: usize,
    /// All unfinished jobs (queued + current).
    jobs: usize,
    /// Accepting new submissions.
    open: bool,
    /// Shutdown entered its cancellation phase.
    cancelling: bool,
    /// Workers should exit.
    stop: bool,
    stats: ServerStats,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Workers wait here for runnable tenants.
    work: Condvar,
    /// Blocking submitters wait here for queue space.
    space: Condvar,
    /// The drain waits here for `jobs == 0`.
    done: Condvar,
    config: ServerConfig,
    plan: FaultPlan,
    vm: Vm,
    faults_injected: AtomicU64,
}

/// A long-lived service runtime over the engine: register named tenants,
/// submit typed [`Request`]s, receive exactly one [`Response`] per
/// admitted request.
///
/// The supervisor provides, over plain std threads and channels:
///
/// * **Bounded admission** — a queue of configured depth with
///   [`SubmitError::QueueFull`] backpressure
///   ([`submit`](Self::submit)) or blocking-with-deadline submission
///   ([`submit_within`](Self::submit_within));
/// * **Weighted fair scheduling** — round-robin turns of
///   `base_slice × weight` instructions, enforced at the engine's
///   `resume(budget)` cadence, so slice interleaving never changes any
///   tenant's results or [`CycleStats`];
/// * **Deadlines and fuel** — per-request deadlines and per-tenant fuel
///   budgets checked at every slice boundary, surfacing as typed
///   rejections;
/// * **Retries** — capped exponential backoff for retry-safe failures
///   per [`RetryPolicy`], never for non-idempotent in-flight calls;
/// * **Graceful degradation** — overload sheds the lowest-priority
///   queued request ([`ServeError::Shed`]) instead of stalling
///   everyone; worker panics are contained to the faulting tenant
///   ([`VmError::EnginePanic`]);
/// * **Drain** — [`drain`](Self::drain) completes or cancels every
///   in-flight request and returns **every** session ([`DrainReport`]);
///   no session is ever lost.
///
/// ```
/// use com_vm::server::{Request, Server, ServerConfig, TenantConfig};
/// use com_vm::Vm;
///
/// # fn main() -> Result<(), com_vm::VmError> {
/// let vm = Vm::new(
///     "class SmallInteger method double ^self + self end end",
/// )?;
/// let server = Server::start(vm, ServerConfig::default());
/// server.register("alice", TenantConfig::default())?;
/// let ticket = server.submit("alice", Request::new("double", 21)).unwrap();
/// assert_eq!(ticket.wait().result_as::<i64>().unwrap(), 42);
/// let report = server.drain(std::time::Duration::from_secs(1));
/// assert_eq!(report.sessions.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool over `vm` with no fault injection.
    pub fn start(vm: Vm, config: ServerConfig) -> Server {
        Server::with_faults(vm, config, FaultPlan::new())
    }

    /// Starts the worker pool with a deterministic [`FaultPlan`]: the
    /// planned faults fire on the chosen requests at the chosen step
    /// counts, and everything else runs exactly as without the plan.
    pub fn with_faults(vm: Vm, config: ServerConfig, plan: FaultPlan) -> Server {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                open: true,
                ..State::default()
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            done: Condvar::new(),
            config,
            plan,
            vm,
            faults_injected: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("com-vm-server-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn server worker thread")
            })
            .collect();
        Server { shared, workers }
    }

    /// Registers (or re-configures) a named tenant, booting its session
    /// from the shared image. Registration is cheap — no compilation or
    /// decoding — and an existing tenant keeps its session and history;
    /// only its grants change.
    ///
    /// # Errors
    ///
    /// Boot errors from [`Vm::session`].
    pub fn register(&self, name: &str, cfg: TenantConfig) -> Result<(), VmError> {
        let session = self.shared.vm.session()?;
        let mut st = self.lock();
        match st.tenants.entry(name.to_string()) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().cfg = cfg,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Tenant {
                    cfg,
                    session: Some(session),
                    mailbox: VecDeque::new(),
                    current: None,
                    running: false,
                    enqueued: false,
                    next_seq: 0,
                });
            }
        }
        Ok(())
    }

    /// Submits without blocking. When the admission queue is full, a
    /// strictly lower-priority queued request is shed to make room
    /// (rejected with [`ServeError::Shed`]); if nothing outranks, the
    /// submission is refused with [`SubmitError::QueueFull`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`], [`SubmitError::UnknownTenant`], or
    /// [`SubmitError::ShuttingDown`].
    pub fn submit(&self, tenant: &str, req: Request) -> Result<Ticket, SubmitError> {
        let mut st = self.lock();
        self.check_admissible(&st, tenant)?;
        if st.queued >= self.shared.config.queue_depth {
            match find_victim(&st, req.priority) {
                Some(victim) => shed(&mut st, victim, &self.shared.done),
                None => {
                    return Err(SubmitError::QueueFull {
                        depth: self.shared.config.queue_depth,
                    })
                }
            }
        }
        Ok(self.admit(&mut st, tenant, req))
    }

    /// Submits, waiting up to `wait` for admission-queue space — the
    /// backpressure-aware path. Sheds lower-priority queued work first,
    /// exactly as [`submit`](Self::submit).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Timeout`] when no space opened within `wait`;
    /// otherwise as [`submit`](Self::submit).
    pub fn submit_within(
        &self,
        tenant: &str,
        req: Request,
        wait: Duration,
    ) -> Result<Ticket, SubmitError> {
        let start = Instant::now();
        let deadline = start + wait;
        let mut st = self.lock();
        loop {
            self.check_admissible(&st, tenant)?;
            if st.queued < self.shared.config.queue_depth {
                return Ok(self.admit(&mut st, tenant, req));
            }
            if let Some(victim) = find_victim(&st, req.priority) {
                shed(&mut st, victim, &self.shared.done);
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SubmitError::Timeout {
                    waited: start.elapsed(),
                });
            }
            let (guard, _) = self
                .shared
                .space
                .wait_timeout(st, deadline - now)
                .expect("server state poisoned");
            st = guard;
        }
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.lock().stats;
        stats.faults_injected = self.shared.faults_injected.load(Ordering::Relaxed);
        stats
    }

    /// Requests currently sitting in the admission queue.
    pub fn queued(&self) -> usize {
        self.lock().queued
    }

    /// Stops admission, gives in-flight and queued work up to `grace` to
    /// complete, cancels whatever remains (each pending request receives
    /// [`ServeError::Cancelled`]; any in-flight call is unwound via
    /// [`Session::cancel`], leaving the session clean), joins every
    /// worker, and returns **all** sessions. No request is left without
    /// a response and no session is lost, whatever the plan injected.
    pub fn drain(mut self, grace: Duration) -> DrainReport {
        self.shutdown(grace);
        let mut st = self.lock();
        let mut sessions: Vec<(String, Session)> = st
            .tenants
            .drain()
            .filter_map(|(name, t)| t.session.map(|s| (name, s)))
            .collect();
        sessions.sort_by(|a, b| a.0.cmp(&b.0));
        let mut stats = st.stats;
        stats.faults_injected = self.shared.faults_injected.load(Ordering::Relaxed);
        drop(st);
        DrainReport { sessions, stats }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("server state poisoned")
    }

    fn check_admissible(&self, st: &State, tenant: &str) -> Result<(), SubmitError> {
        if !st.open {
            return Err(SubmitError::ShuttingDown);
        }
        if !st.tenants.contains_key(tenant) {
            return Err(SubmitError::UnknownTenant(tenant.to_string()));
        }
        Ok(())
    }

    fn admit(&self, st: &mut State, tenant: &str, req: Request) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let deadline = req.deadline.map(|d| now + d);
        let t = st.tenants.get_mut(tenant).expect("tenant checked");
        let seq = t.next_seq;
        t.next_seq += 1;
        t.mailbox.push_back(Job {
            tenant: tenant.to_string(),
            seq,
            fault: self.shared.plan.fault_for(tenant, seq),
            req,
            reply: tx,
            attempts: 0,
            steps_used: 0,
            attempt_base: CycleStats::default(),
            submitted: now,
            deadline,
            not_before: None,
        });
        let enqueue = !t.enqueued && !t.running;
        if enqueue {
            t.enqueued = true;
        }
        st.queued += 1;
        st.jobs += 1;
        st.stats.submitted += 1;
        st.stats.max_queued = st.stats.max_queued.max(st.queued);
        if enqueue {
            st.run_queue.push_back(tenant.to_string());
        }
        self.shared.work.notify_one();
        Ticket {
            rx,
            tenant: tenant.to_string(),
            request: seq,
        }
    }

    /// Close admission, give `grace` to finish, cancel the rest, join.
    fn shutdown(&mut self, grace: Duration) {
        if self.workers.is_empty() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        {
            let mut st = self.lock();
            st.open = false;
            shared.space.notify_all();
            let deadline = Instant::now() + grace;
            while st.jobs > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared
                    .done
                    .wait_timeout(st, deadline - now)
                    .expect("server state poisoned");
                st = guard;
            }
            if st.jobs > 0 {
                st.cancelling = true;
                // Cancel everything not currently held by a worker;
                // workers cancel what they hold at their next slice
                // boundary.
                let names: Vec<String> = st.tenants.keys().cloned().collect();
                let mut victims: Vec<Job> = Vec::new();
                let mut from_mailbox = 0usize;
                for name in &names {
                    let t = st.tenants.get_mut(name).expect("registered tenant");
                    from_mailbox += t.mailbox.len();
                    victims.extend(t.mailbox.drain(..));
                    if !t.running {
                        if let Some(job) = t.current.take() {
                            if let Some(s) = t.session.as_mut() {
                                let _ = catch_unwind(AssertUnwindSafe(|| s.cancel()));
                            }
                            victims.push(job);
                        }
                    }
                }
                st.queued -= from_mailbox;
                st.jobs -= victims.len();
                st.stats.cancelled += victims.len() as u64;
                for job in victims {
                    deliver(job, Err(ServeError::Cancelled), CycleStats::default());
                }
                shared.work.notify_all();
                while st.jobs > 0 {
                    let (guard, _) = shared
                        .done
                        .wait_timeout(st, Duration::from_millis(50))
                        .expect("server state poisoned");
                    st = guard;
                }
            }
            st.stop = true;
        }
        shared.work.notify_all();
        shared.space.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Not drained explicitly: cancel everything and still deliver a
        // typed response to every pending ticket.
        self.shutdown(Duration::ZERO);
    }
}

/// Picks the queued request to evict for a `newcomer`-priority
/// submission: strictly lower priority only; among those, the lowest
/// class, most recently submitted (latest arrivals lose first).
fn find_victim(st: &State, newcomer: crate::server::Priority) -> Option<(String, usize)> {
    let mut best: Option<(crate::server::Priority, Instant, String, usize)> = None;
    for (name, t) in &st.tenants {
        for (i, job) in t.mailbox.iter().enumerate() {
            if job.req.priority >= newcomer {
                continue;
            }
            let beats = match &best {
                None => true,
                Some((p, at, _, _)) => {
                    job.req.priority < *p || (job.req.priority == *p && job.submitted > *at)
                }
            };
            if beats {
                best = Some((job.req.priority, job.submitted, name.clone(), i));
            }
        }
    }
    best.map(|(_, _, name, i)| (name, i))
}

fn shed(st: &mut State, (name, index): (String, usize), done: &Condvar) {
    let t = st.tenants.get_mut(&name).expect("victim tenant");
    let job = t.mailbox.remove(index).expect("victim job");
    let priority = job.req.priority;
    st.queued -= 1;
    st.jobs -= 1;
    st.stats.shed += 1;
    deliver(
        job,
        Err(ServeError::Shed { priority }),
        CycleStats::default(),
    );
    if st.jobs == 0 {
        done.notify_all();
    }
}

fn deliver(job: Job, outcome: Result<Word, ServeError>, stats: CycleStats) {
    let response = Response {
        tenant: job.tenant,
        request: job.seq,
        outcome,
        stats,
        attempts: job.attempts,
        latency: job.submitted.elapsed(),
    };
    // The ticket may have been dropped; delivery is best-effort.
    let _ = job.reply.send(response);
}

/// What one scheduling turn decided.
enum Turn {
    /// Still in flight: requeue as the tenant's current job.
    Yield,
    /// The attempt failed retryably: gate by this backoff, then restart.
    Retry(Duration),
    /// Terminal: deliver this response.
    Respond(Result<Word, ServeError>, CycleStats),
}

fn worker_loop(shared: &Shared) {
    while let Some((name, mut session, mut job, cfg)) = claim(shared) {
        let turn = drive_turn(shared, cfg, &mut session, &mut job);
        reintegrate(shared, &name, session, job, turn);
    }
}

/// Blocks until a tenant is runnable (claims it) or the server stops
/// (`None`). A claimed tenant is marked `running`; its session and the
/// job to drive are moved out of the shared state, so the slice runs
/// without holding the lock.
fn claim(shared: &Shared) -> Option<(String, Session, Job, TenantConfig)> {
    let mut st = shared.state.lock().expect("server state poisoned");
    loop {
        if st.stop {
            return None;
        }
        let now = Instant::now();
        let mut gate: Option<Instant> = None;
        let mut chosen: Option<String> = None;
        for _ in 0..st.run_queue.len() {
            let Some(name) = st.run_queue.pop_front() else {
                break;
            };
            enum Readiness {
                Ready,
                Gated(Instant),
                Idle,
            }
            let readiness = {
                let t = st.tenants.get_mut(&name).expect("queued tenant");
                t.enqueued = false;
                if t.running || t.session.is_none() {
                    Readiness::Idle
                } else if let Some(job) = &t.current {
                    match job.not_before {
                        Some(nb) if nb > now => Readiness::Gated(nb),
                        _ => Readiness::Ready,
                    }
                } else if t.mailbox.is_empty() {
                    Readiness::Idle
                } else {
                    Readiness::Ready
                }
            };
            match readiness {
                Readiness::Ready => {
                    chosen = Some(name);
                    break;
                }
                Readiness::Gated(nb) => {
                    gate = Some(gate.map_or(nb, |g| g.min(nb)));
                    let t = st.tenants.get_mut(&name).expect("queued tenant");
                    t.enqueued = true;
                    st.run_queue.push_back(name);
                }
                Readiness::Idle => {}
            }
        }
        if let Some(name) = chosen {
            let (session, job, from_mailbox, cfg) = {
                let t = st.tenants.get_mut(&name).expect("chosen tenant");
                t.running = true;
                let session = t.session.take().expect("idle tenant holds its session");
                let (job, from_mailbox) = match t.current.take() {
                    Some(job) => (job, false),
                    None => (t.mailbox.pop_front().expect("ready tenant has work"), true),
                };
                (session, job, from_mailbox, t.cfg)
            };
            if from_mailbox {
                st.queued -= 1;
                shared.space.notify_one();
            }
            return Some((name, session, job, cfg));
        }
        st = match gate {
            Some(g) => {
                let wait = g.saturating_duration_since(Instant::now());
                shared
                    .work
                    .wait_timeout(st, wait)
                    .expect("server state poisoned")
                    .0
            }
            None => shared.work.wait(st).expect("server state poisoned"),
        };
    }
}

/// Drives one scheduling turn for a claimed tenant, outside the lock:
/// start the attempt if needed, run one weighted slice under the
/// deadline/fuel/fault tripwires, classify the outcome.
fn drive_turn(shared: &Shared, cfg: TenantConfig, session: &mut Session, job: &mut Job) -> Turn {
    let policy = shared.config.retry;
    if deadline_passed(job) {
        if session.in_flight() {
            session.cancel();
        }
        return deadline_turn(session, job);
    }
    if !session.in_flight() {
        // Fresh attempt (first, or a retry after the backoff gate).
        job.attempts += 1;
        job.steps_used = 0;
        job.attempt_base = session.stats();
        let started = catch_unwind(AssertUnwindSafe(|| {
            session.call_start_with(&job.req.selector, job.req.receiver, &job.req.args)
        }));
        match started {
            Ok(Ok(())) => {}
            Ok(Err(error)) => return settle(policy, job, session, error),
            Err(payload) => return panic_turn(policy, job, session, &*payload),
        }
    }
    // The fault tripwire arms on the first attempt only; retries run
    // clean.
    let fault = job.fault.filter(|_| job.attempts == 1);
    if let Some(f) = fault {
        if job.steps_used >= f.at_step {
            return apply_fault(shared, policy, job, session, f);
        }
    }
    let fuel = job.req.fuel.unwrap_or(cfg.fuel_per_request);
    let remaining_fuel = fuel.saturating_sub(job.steps_used);
    if remaining_fuel == 0 {
        session.cancel();
        return settle(policy, job, session, VmError::OutOfFuel { budget: fuel });
    }
    let mut slice = shared
        .config
        .base_slice
        .saturating_mul(u64::from(cfg.weight.max(1)))
        .max(1)
        .min(remaining_fuel);
    if let Some(f) = fault {
        // Land the attempt exactly on the tripwire step.
        slice = slice.min(f.at_step - job.steps_used);
    }
    let before = session.stats().instructions;
    let driven = catch_unwind(AssertUnwindSafe(|| session.resume_raw_guarded(slice)));
    match driven {
        Ok(Ok(Outcome::Done(word))) => {
            Turn::Respond(Ok(word), session.stats().since(&job.attempt_base))
        }
        Ok(Ok(Outcome::Yielded)) => {
            job.steps_used += session.stats().instructions - before;
            if let Some(f) = fault {
                if job.steps_used >= f.at_step {
                    return apply_fault(shared, policy, job, session, f);
                }
            }
            if deadline_passed(job) {
                session.cancel();
                return deadline_turn(session, job);
            }
            if job.steps_used >= fuel {
                session.cancel();
                return settle(policy, job, session, VmError::OutOfFuel { budget: fuel });
            }
            Turn::Yield
        }
        Ok(Err(error)) => settle(policy, job, session, error),
        Err(payload) => panic_turn(policy, job, session, &*payload),
    }
}

fn deadline_passed(job: &Job) -> bool {
    job.deadline.is_some_and(|d| Instant::now() >= d)
}

fn deadline_turn(session: &Session, job: &Job) -> Turn {
    Turn::Respond(
        Err(ServeError::DeadlineExceeded {
            waited: job.submitted.elapsed(),
        }),
        session.stats().since(&job.attempt_base),
    )
}

/// A caught worker panic: contain it, cancel the wreckage, classify.
fn panic_turn(
    policy: RetryPolicy,
    job: &mut Job,
    session: &mut Session,
    payload: &(dyn std::any::Any + Send),
) -> Turn {
    let message = panic_message(payload);
    let _ = catch_unwind(AssertUnwindSafe(|| session.cancel()));
    settle(policy, job, session, VmError::EnginePanic { message })
}

/// Fires a planned fault on its victim: unwind the in-flight call and
/// surface the fault's typed error (with the attempt's honest partial
/// statistics), exactly as the organic failure would.
fn apply_fault(
    shared: &Shared,
    policy: RetryPolicy,
    job: &mut Job,
    session: &mut Session,
    fault: InjectedFault,
) -> Turn {
    shared.faults_injected.fetch_add(1, Ordering::Relaxed);
    let partial = session.stats().since(&job.attempt_base);
    match fault.kind {
        FaultKind::Trap => {
            session.cancel();
            let cause = MachineError::BadOperands {
                opcode: com_isa::Opcode::DIV,
                reason: "injected fault (FaultPlan)",
            };
            settle(policy, job, session, VmError::trap(cause, partial))
        }
        FaultKind::Stall => {
            session.cancel();
            settle(
                policy,
                job,
                session,
                VmError::Stalled {
                    slice: shared.config.base_slice,
                },
            )
        }
        FaultKind::OutOfFuel => {
            session.cancel();
            settle(
                policy,
                job,
                session,
                VmError::OutOfFuel {
                    budget: fault.at_step,
                },
            )
        }
        FaultKind::WorkerPanic => {
            // A genuine panic-and-unwind on this worker thread, caught
            // exactly where an organic engine panic would be.
            let payload = catch_unwind(AssertUnwindSafe(|| panic!("{INJECTED_PANIC}")))
                .expect_err("the closure always panics");
            panic_turn(policy, job, session, &*payload)
        }
    }
}

/// Classifies a failed attempt: retry (gated by backoff) when the error
/// is retry-safe, attempts remain, and the request is idempotent or
/// never executed; terminal otherwise.
fn settle(policy: RetryPolicy, job: &mut Job, session: &Session, error: VmError) -> Turn {
    let may_retry = policy.retryable(&error)
        && job.attempts < policy.max_attempts
        && (job.req.idempotent || job.steps_used == 0);
    if may_retry {
        Turn::Retry(policy.backoff(job.attempts))
    } else {
        Turn::Respond(
            Err(ServeError::Vm(error)),
            session.stats().since(&job.attempt_base),
        )
    }
}

/// Puts a driven tenant back under the lock: restore the session, apply
/// the turn's decision, keep the run queue and counters coherent.
fn reintegrate(shared: &Shared, name: &str, mut session: Session, mut job: Job, turn: Turn) {
    let cancelled_delta = session.stats().since(&job.attempt_base);
    let mut st = shared.state.lock().expect("server state poisoned");
    let cancelling = st.cancelling;
    let mut finished = false;
    let keep: Option<Job> = match turn {
        Turn::Yield if !cancelling => Some(job),
        Turn::Yield => {
            session.cancel();
            st.jobs -= 1;
            st.stats.cancelled += 1;
            finished = true;
            deliver(job, Err(ServeError::Cancelled), cancelled_delta);
            None
        }
        Turn::Retry(gate) if !cancelling => {
            st.stats.retries += 1;
            job.not_before = Some(Instant::now() + gate);
            Some(job)
        }
        Turn::Retry(_) => {
            // The failed attempt is already unwound; shutdown wins.
            st.jobs -= 1;
            st.stats.cancelled += 1;
            finished = true;
            deliver(job, Err(ServeError::Cancelled), cancelled_delta);
            None
        }
        Turn::Respond(outcome, stats) => {
            match &outcome {
                Ok(_) => st.stats.completed += 1,
                Err(ServeError::DeadlineExceeded { .. }) => st.stats.deadline_exceeded += 1,
                Err(_) => st.stats.failed += 1,
            }
            st.jobs -= 1;
            finished = true;
            deliver(job, outcome, stats);
            None
        }
    };
    let requeue = {
        let t = st.tenants.get_mut(name).expect("driven tenant");
        t.running = false;
        t.session = Some(session);
        t.current = keep;
        let has_work = t.current.is_some() || !t.mailbox.is_empty();
        if has_work && !t.enqueued {
            t.enqueued = true;
            true
        } else {
            false
        }
    };
    if requeue {
        st.run_queue.push_back(name.to_string());
    }
    let all_done = finished && st.jobs == 0;
    drop(st);
    if requeue {
        shared.work.notify_one();
    }
    if all_done {
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = r#"
        class SmallInteger
          method factorial | acc |
            acc := 1.
            1 to: self do: [ :i | acc := acc * i ].
            ^acc
          end
          method spin | n |
            n := 0.
            1 to: self do: [ :i | n := n + i ].
            ^n
          end
        end
    "#;

    fn server(workers: usize, depth: usize) -> Server {
        Server::start(
            Vm::new(PROGRAM).unwrap(),
            ServerConfig {
                workers,
                queue_depth: depth,
                base_slice: 50,
                retry: RetryPolicy::default(),
            },
        )
    }

    #[test]
    fn serves_typed_calls_across_tenants() {
        let s = server(2, 64);
        for name in ["a", "b", "c"] {
            s.register(name, TenantConfig::default()).unwrap();
        }
        let t1 = s.submit("a", Request::new("factorial", 10i64)).unwrap();
        let t2 = s.submit("b", Request::new("factorial", 5i64)).unwrap();
        let t3 = s.submit("c", Request::new("spin", 100i64)).unwrap();
        assert_eq!(t1.wait().result_as::<i64>().unwrap(), 3_628_800);
        assert_eq!(t2.wait().result_as::<i64>().unwrap(), 120);
        assert_eq!(t3.wait().result_as::<i64>().unwrap(), 5050);
        let stats = s.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        let report = s.drain(Duration::from_secs(5));
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.sessions[0].0, "a");
    }

    #[test]
    fn unknown_tenant_and_shutdown_are_refused_at_the_door() {
        let s = server(1, 4);
        s.register("a", TenantConfig::default()).unwrap();
        match s.submit("nobody", Request::new("factorial", 1i64)) {
            Err(SubmitError::UnknownTenant(name)) => assert_eq!(name, "nobody"),
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        let report = s.drain(Duration::from_secs(1));
        assert_eq!(report.stats.submitted, 0);
        assert_eq!(report.sessions.len(), 1);
    }

    #[test]
    fn per_request_sequence_numbers_count_up() {
        let s = server(1, 64);
        s.register("a", TenantConfig::default()).unwrap();
        let t0 = s.submit("a", Request::new("factorial", 3i64)).unwrap();
        let t1 = s.submit("a", Request::new("factorial", 4i64)).unwrap();
        assert_eq!((t0.tenant(), t0.request()), ("a", 0));
        assert_eq!(t1.request(), 1);
        assert_eq!(t0.wait().result_as::<i64>().unwrap(), 6);
        assert_eq!(t1.wait().result_as::<i64>().unwrap(), 24);
        drop(s);
    }

    #[test]
    fn dropping_the_server_still_answers_every_ticket() {
        let s = server(1, 64);
        s.register("a", TenantConfig::default()).unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| s.submit("a", Request::new("spin", 2_000_000i64)).unwrap())
            .collect();
        drop(s); // no drain: immediate cancellation
        for t in tickets {
            let r = t.wait();
            assert!(
                r.is_ok() || r.outcome == Err(ServeError::Cancelled),
                "ticket must resolve to done-or-cancelled, got {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn deadline_rejects_slow_requests_but_not_fast_ones() {
        let s = server(1, 64);
        s.register("a", TenantConfig::default()).unwrap();
        // An effectively-infinite spin with an immediate deadline.
        let slow = s
            .submit(
                "a",
                Request::new("spin", i64::MAX).deadline(Duration::from_millis(1)),
            )
            .unwrap();
        match slow.wait().outcome {
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The session is clean afterwards.
        let fast = s
            .submit(
                "a",
                Request::new("factorial", 5i64).deadline(Duration::from_secs(60)),
            )
            .unwrap();
        assert_eq!(fast.wait().result_as::<i64>().unwrap(), 120);
        assert_eq!(s.stats().deadline_exceeded, 1);
        drop(s);
    }

    #[test]
    fn fuel_budgets_bound_each_request() {
        let s = server(1, 64);
        s.register(
            "metered",
            TenantConfig {
                weight: 1,
                fuel_per_request: 200,
            },
        )
        .unwrap();
        let too_big = s
            .submit("metered", Request::new("spin", 1_000_000i64))
            .unwrap();
        match too_big.wait().outcome {
            Err(ServeError::Vm(VmError::OutOfFuel { budget: 200 })) => {}
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
        // A request-level override can raise the grant.
        let raised = s
            .submit("metered", Request::new("factorial", 10i64).fuel(1_000_000))
            .unwrap();
        assert_eq!(raised.wait().result_as::<i64>().unwrap(), 3_628_800);
        drop(s);
    }
}
