//! The service runtime: a supervised, long-lived front door over the
//! multi-tenant engine.
//!
//! [`Vm`](crate::Vm)/[`Session`](crate::Session) (PR 3) made tenants
//! cheap, the [`ParallelExecutor`](crate::ParallelExecutor) (PR 4) ran a
//! fixed batch across worker threads, and the recoverable-trap work
//! (PR 5) made per-tenant failure survivable. This module turns those
//! pieces into something operable under sustained, hostile load: a
//! [`Server`] that accepts an **unbounded stream** of typed requests
//! against named sessions and enforces a service contract —
//!
//! * **Admission control** — a bounded queue with typed backpressure
//!   ([`SubmitError::QueueFull`]) and a blocking submit with deadline
//!   ([`Server::submit_within`]);
//! * **Deadlines and fuel** — per-request deadlines and per-tenant fuel
//!   budgets, enforced at the engine's `resume(budget)` cadence under
//!   weighted fair scheduling ([`TenantConfig::weight`]);
//! * **Retries** — [`RetryPolicy`]: capped exponential backoff for
//!   retry-safe failures only, never for non-idempotent in-flight
//!   calls;
//! * **Graceful degradation** — overload sheds the lowest-priority
//!   queued request ([`ServeError::Shed`]) instead of stalling every
//!   tenant; worker panics are contained per tenant
//!   ([`VmError::EnginePanic`](crate::VmError::EnginePanic));
//! * **Drain** — [`Server::drain`] completes or cancels everything and
//!   returns every session: the PR 4 "no session lost" guarantee,
//!   extended to shutdown;
//! * **Deterministic fault injection** — [`FaultPlan`] fires chosen
//!   faults (traps, stalls, worker panics, fuel exhaustion) on chosen
//!   requests at chosen step counts, so robustness claims are tested by
//!   replayable soaks, not by luck. Because slice cadence never changes
//!   results or statistics, tenants a plan does *not* touch finish
//!   **bit-identical** to solo fault-free runs — the property
//!   `tests/server.rs` proves.

pub(crate) mod admission;
pub(crate) mod injector;
pub(crate) mod policy;
pub(crate) mod supervisor;

pub use admission::{Priority, Request, Response, ServeError, SubmitError, Ticket};
pub use injector::{FaultKind, FaultPlan, InjectedFault};
pub use policy::{RetryPolicy, TenantConfig};
pub use supervisor::{DrainReport, Server, ServerConfig, ServerStats};
