//! The admission boundary: requests in, typed responses (or typed
//! rejections) out.

use std::sync::mpsc;
use std::time::Duration;

use com_core::CycleStats;
use com_mem::Word;

use crate::{FromWord, ToWord, VmError};

/// Shed ordering under overload: when the admission queue is full, a
/// newly submitted request may evict a *strictly lower-priority* queued
/// request (which is rejected with [`ServeError::Shed`]) instead of
/// being refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// First to be shed.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Never shed in favour of lower classes.
    High,
}

/// One typed call to submit against a named session: selector, receiver,
/// arguments, and the request's service envelope (priority, deadline,
/// fuel override, idempotency).
///
/// ```
/// use com_vm::server::{Priority, Request};
/// use std::time::Duration;
///
/// let req = Request::new("factorial", 12i64)
///     .priority(Priority::High)
///     .deadline(Duration::from_millis(50))
///     .idempotent(true);
/// # let _ = req;
/// ```
#[derive(Debug, Clone)]
pub struct Request {
    pub(crate) selector: String,
    pub(crate) receiver: Word,
    pub(crate) args: Vec<Word>,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Duration>,
    pub(crate) fuel: Option<u64>,
    pub(crate) idempotent: bool,
}

impl Request {
    /// A [`Priority::Normal`], no-deadline, non-idempotent request
    /// sending `selector` to `receiver`.
    pub fn new(selector: &str, receiver: impl ToWord) -> Request {
        Request {
            selector: selector.to_string(),
            receiver: receiver.to_word(),
            args: Vec::new(),
            priority: Priority::Normal,
            deadline: None,
            fuel: None,
            idempotent: false,
        }
    }

    /// Appends an argument.
    pub fn arg(mut self, arg: impl ToWord) -> Request {
        self.args.push(arg.to_word());
        self
    }

    /// Sets the shed class (default [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Request {
        self.priority = priority;
        self
    }

    /// Sets a deadline relative to submission. Checked at every slice
    /// boundary; an expired request is unwound and rejected with
    /// [`ServeError::DeadlineExceeded`] — including while still queued.
    pub fn deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the tenant's
    /// [`fuel_per_request`](crate::server::TenantConfig::fuel_per_request)
    /// for this request only.
    pub fn fuel(mut self, fuel: u64) -> Request {
        self.fuel = Some(fuel);
        self
    }

    /// Declares the call idempotent: safe to re-run even after a failed
    /// attempt already retired instructions. Non-idempotent requests
    /// (the default) are only retried when the failed attempt never
    /// executed — see [`RetryPolicy`](crate::server::RetryPolicy).
    pub fn idempotent(mut self, idempotent: bool) -> Request {
        self.idempotent = idempotent;
        self
    }
}

/// Why a submitted request was not served. Every admitted request
/// terminates in exactly one [`Response`]; this is its failure side.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The call failed in the machine (trap, unknown selector, fuel
    /// exhaustion, stall, contained panic) and the
    /// [`RetryPolicy`](crate::server::RetryPolicy) either classified it
    /// non-retryable or ran out of attempts.
    Vm(VmError),
    /// The request's deadline passed — while queued or between slices —
    /// and the call was unwound.
    DeadlineExceeded {
        /// Time from submission to rejection.
        waited: Duration,
    },
    /// The request was evicted from a full admission queue to make room
    /// for higher-priority work.
    Shed {
        /// The evicted request's own priority class.
        priority: Priority,
    },
    /// Server shutdown cancelled the request (queued or mid-call) before
    /// it completed.
    Cancelled,
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Vm(e) => write!(f, "request failed: {e}"),
            ServeError::DeadlineExceeded { waited } => {
                write!(
                    f,
                    "request missed its deadline ({}µs after submission)",
                    waited.as_micros()
                )
            }
            ServeError::Shed { priority } => {
                write!(f, "request shed under overload (priority {priority:?})")
            }
            ServeError::Cancelled => write!(f, "request cancelled by server shutdown"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a request was refused *at the door* (never admitted, no
/// [`Ticket`] issued).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at its configured depth and the request
    /// outranked nothing sheddable. Backpressure: slow down, or use
    /// [`submit_within`](crate::server::Server::submit_within).
    QueueFull {
        /// The configured depth that was hit.
        depth: usize,
    },
    /// [`submit_within`](crate::server::Server::submit_within) found no
    /// queue space within its wait budget.
    Timeout {
        /// How long the submitter waited.
        waited: Duration,
    },
    /// No tenant of that name was ever
    /// [registered](crate::server::Server::register).
    UnknownTenant(
        /// The unknown name.
        String,
    ),
    /// The server is draining and admits nothing new.
    ShuttingDown,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "admission queue full (configured depth {depth})")
            }
            SubmitError::Timeout { waited } => {
                write!(
                    f,
                    "no admission-queue space within {}µs",
                    waited.as_micros()
                )
            }
            SubmitError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The terminal record of one admitted request: success word or typed
/// failure, plus honest accounting.
#[derive(Debug, Clone)]
pub struct Response {
    /// The tenant the request ran against.
    pub tenant: String,
    /// The request's per-tenant sequence number (0-based submission
    /// order — the same key a [`FaultPlan`](crate::server::FaultPlan)
    /// uses).
    pub request: u64,
    /// The result word, or the typed reason the request failed.
    pub outcome: Result<Word, ServeError>,
    /// [`CycleStats`] delta of the final attempt — the work this request
    /// actually performed, partial if it was unwound mid-call.
    pub stats: CycleStats,
    /// Attempts consumed (1 = no retries).
    pub attempts: u32,
    /// Submission-to-response wall time.
    pub latency: Duration,
}

impl Response {
    /// The success result converted to `R`.
    ///
    /// # Errors
    ///
    /// The request's own [`ServeError`] if it failed, or
    /// [`ServeError::Vm`]`(`[`VmError::Type`]`)` if the result word does
    /// not convert.
    pub fn result_as<R: FromWord>(&self) -> Result<R, ServeError> {
        let word = self.outcome.clone()?;
        R::from_word(word).map_err(ServeError::Vm)
    }

    /// Whether the request completed with a result.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    pub(crate) fn cancelled(tenant: String, request: u64) -> Response {
        Response {
            tenant,
            request,
            outcome: Err(ServeError::Cancelled),
            stats: CycleStats::default(),
            attempts: 0,
            latency: Duration::ZERO,
        }
    }
}

/// A claim on one admitted request's eventual [`Response`].
///
/// The server delivers exactly one response per admitted request — on
/// completion, terminal failure, shed, or shutdown — so
/// [`wait`](Self::wait) always returns. If the server is dropped
/// without its drain path running (it cannot be, short of a crash), the
/// closed channel is reported as a cancellation rather than a panic.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Response>,
    pub(crate) tenant: String,
    pub(crate) request: u64,
}

impl Ticket {
    /// Blocks until the request's response arrives.
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .unwrap_or_else(|_| Response::cancelled(self.tenant, self.request))
    }

    /// The response if it has already arrived ([`None`] while the
    /// request is still queued or running).
    pub fn try_wait(&self) -> Option<Response> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(Response::cancelled(self.tenant.clone(), self.request))
            }
        }
    }

    /// The tenant this ticket's request ran against.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The request's per-tenant sequence number.
    pub fn request(&self) -> u64 {
        self.request
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_normal_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn request_builder_accumulates() {
        let r = Request::new("at:put:", 1i64)
            .arg(2i64)
            .arg(3i64)
            .priority(Priority::Low)
            .deadline(Duration::from_millis(5))
            .fuel(100)
            .idempotent(true);
        assert_eq!(r.selector, "at:put:");
        assert_eq!(r.args.len(), 2);
        assert_eq!(r.priority, Priority::Low);
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));
        assert_eq!(r.fuel, Some(100));
        assert!(r.idempotent);
    }

    #[test]
    fn serve_and_submit_errors_display_stable_fragments() {
        use std::error::Error;
        let e = ServeError::Vm(VmError::Stalled { slice: 4 });
        assert!(e.to_string().contains("request failed"));
        assert!(e.source().is_some(), "Vm wrapper must chain its source");
        let e = ServeError::DeadlineExceeded {
            waited: Duration::from_micros(250),
        };
        assert!(e.to_string().contains("missed its deadline"));
        assert!(e.source().is_none());
        let e = ServeError::Shed {
            priority: Priority::Low,
        };
        assert!(e.to_string().contains("shed under overload"));
        assert!(ServeError::Cancelled.to_string().contains("cancelled"));

        assert!(SubmitError::QueueFull { depth: 8 }
            .to_string()
            .contains("queue full"));
        assert!(SubmitError::Timeout {
            waited: Duration::from_micros(9)
        }
        .to_string()
        .contains("no admission-queue space"));
        assert!(SubmitError::UnknownTenant("x".into())
            .to_string()
            .contains("unknown tenant"));
        assert!(SubmitError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }

    #[test]
    fn response_result_as_converts_or_propagates() {
        let ok = Response {
            tenant: "t".into(),
            request: 0,
            outcome: Ok(7i64.to_word()),
            stats: CycleStats::default(),
            attempts: 1,
            latency: Duration::ZERO,
        };
        assert_eq!(ok.result_as::<i64>().unwrap(), 7);
        assert!(ok.is_ok());
        match ok.result_as::<f64>() {
            Err(ServeError::Vm(VmError::Type { .. })) => {}
            other => panic!("expected type error, got {other:?}"),
        }
        let failed = Response {
            outcome: Err(ServeError::Cancelled),
            ..ok
        };
        assert_eq!(failed.result_as::<i64>(), Err(ServeError::Cancelled));
        assert!(!failed.is_ok());
    }
}
