//! Retry classification, backoff, and per-tenant resource policy.

use std::time::Duration;

use crate::VmError;

/// When (and how hard) the server retries a failed request.
///
/// Classification is deliberately narrow. A retry is only ever issued
/// when **all** of these hold:
///
/// 1. the error is *retry-safe* (see [`retryable`](Self::retryable)):
///    [`VmError::Stalled`] (a fresh attempt gets a fresh slice),
///    [`VmError::EnginePanic`] (panics are transient by definition), or
///    [`VmError::OutOfFuel`] whose exhausted budget is below
///    [`retry_fuel_limit`](Self::retry_fuel_limit) — exhausting a
///    *small* budget is circumstantial, exhausting the tenant's full
///    fuel grant is deterministic and would only fail again;
/// 2. the request is [idempotent](crate::server::Request::idempotent),
///    **or** the failed attempt never retired an instruction — a
///    non-idempotent call that has started executing is never retried;
/// 3. fewer than [`max_attempts`](Self::max_attempts) attempts have run.
///
/// Everything else — traps, unknown selectors, type mismatches, machine
/// refusals — is deterministic and fails the request immediately.
///
/// Between attempts the request is gated by capped exponential backoff:
/// attempt *n*'s failure waits `base_backoff × 2^(n−1)`, clamped to
/// [`max_backoff`](Self::max_backoff), before the next attempt may be
/// scheduled. The tenant's other queued requests are **not** delayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, first try included. `1` disables
    /// retries entirely.
    pub max_attempts: u32,
    /// Backoff after the first failed attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// [`VmError::OutOfFuel`] is retried only when the exhausted budget
    /// is strictly below this. `0` (the default) never retries fuel
    /// exhaustion.
    pub retry_fuel_limit: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(8),
            retry_fuel_limit: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries anything.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Whether `error` is retry-safe under this policy (condition 1 of
    /// the classification; idempotency and the attempt cap are judged
    /// separately by the supervisor).
    pub fn retryable(&self, error: &VmError) -> bool {
        match error {
            VmError::Stalled { .. } | VmError::EnginePanic { .. } => true,
            VmError::OutOfFuel { budget } => *budget < self.retry_fuel_limit,
            _ => false,
        }
    }

    /// The gate after `attempt` (1-based) failed: `base × 2^(attempt−1)`
    /// clamped to [`max_backoff`](Self::max_backoff).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        self.base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff)
    }
}

/// Per-tenant resource grants, set at [registration](crate::server::Server::register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Weighted-fair share: each scheduling turn drives the tenant for
    /// `base_slice × weight` instructions. Clamped to ≥ 1.
    pub weight: u32,
    /// Fuel budget per request (instructions across all of a request's
    /// slices within one attempt). Exhaustion surfaces as
    /// [`VmError::OutOfFuel`] with this budget. A per-request
    /// [`fuel`](crate::server::Request::fuel) override takes precedence.
    pub fuel_per_request: u64,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            weight: 1,
            fuel_per_request: u64::MAX,
        }
    }
}

impl TenantConfig {
    /// Default grants with an explicit fair-share weight.
    pub fn weighted(weight: u32) -> TenantConfig {
        TenantConfig {
            weight,
            ..TenantConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Trap;
    use com_core::CycleStats;

    #[test]
    fn classification_is_narrow() {
        let p = RetryPolicy {
            retry_fuel_limit: 100,
            ..RetryPolicy::default()
        };
        assert!(p.retryable(&VmError::Stalled { slice: 5 }));
        assert!(p.retryable(&VmError::EnginePanic {
            message: "x".into()
        }));
        assert!(p.retryable(&VmError::OutOfFuel { budget: 99 }));
        assert!(!p.retryable(&VmError::OutOfFuel { budget: 100 }));
        assert!(!p.retryable(&VmError::UnknownSelector("f".into())));
        assert!(!p.retryable(&VmError::Trap(Box::new(Trap {
            cause: com_core::MachineError::NoContext,
            stats: CycleStats::default(),
        }))));
        // Default limit of 0 means fuel exhaustion is never retried.
        assert!(!RetryPolicy::default().retryable(&VmError::OutOfFuel { budget: 1 }));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(6),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(4));
        assert_eq!(p.backoff(4), Duration::from_millis(6)); // capped
        assert_eq!(p.backoff(100), Duration::from_millis(6)); // no overflow
    }

    #[test]
    fn tenant_defaults_are_unweighted_and_unmetered() {
        let t = TenantConfig::default();
        assert_eq!(t.weight, 1);
        assert_eq!(t.fuel_per_request, u64::MAX);
        assert_eq!(TenantConfig::weighted(4).weight, 4);
    }
}
