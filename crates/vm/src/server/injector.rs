//! Deterministic fault injection for the service runtime.
//!
//! A [`FaultPlan`] names, ahead of time, exactly which requests fail and
//! how: *this tenant's third request traps after 40 retired
//! instructions; that one's first request loses its worker to a panic at
//! step 12*. The supervisor consults the plan at the `resume(budget)`
//! cadence — it caps the slice so the victim lands **exactly** on the
//! chosen step count, then applies the fault — so a seeded plan replays
//! bit-identically run after run. Random plans use the same seeded
//! xorshift64* generator as the GC equivalence tests, so a soak run is
//! reproducible from its seed alone.
//!
//! Faults apply to the **first attempt** of a request only: a retry (see
//! [`RetryPolicy`](crate::server::RetryPolicy)) runs clean, which is
//! what lets a soak distinguish "retry recovered the request" from
//! "request failed terminally".

use std::collections::{BTreeMap, HashMap};

/// The panic message used by injected worker panics (and matched by
/// [`FaultPlan::silence_injected_panics`]).
pub(crate) const INJECTED_PANIC: &str = "injected worker panic (FaultPlan)";

/// What an injected fault does to its victim request when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The call is unwound and reported as a machine trap
    /// ([`VmError::Trap`](crate::VmError::Trap) whose cause is
    /// `BadOperands` with the reason `"injected fault (FaultPlan)"`, and
    /// whose partial statistics are the victim's honest delta). Not
    /// retry-safe — like a real program trap, it would fail again.
    Trap,
    /// The call is unwound and reported as
    /// [`VmError::Stalled`](crate::VmError::Stalled) — the wedged-machine
    /// condition. Retry-safe.
    Stall,
    /// The call is unwound and reported as
    /// [`VmError::OutOfFuel`](crate::VmError::OutOfFuel) whose reported
    /// budget is the injected step count — a tenant whose fuel bucket
    /// ran dry. Retry-safe when the budget is below the policy's
    /// `retry_fuel_limit`.
    OutOfFuel,
    /// The worker thread driving the victim's slice panics. Contained by
    /// the supervisor's `catch_unwind` and reported as
    /// [`VmError::EnginePanic`](crate::VmError::EnginePanic); retry-safe
    /// (panics are transient), though non-idempotent in-flight calls are
    /// still never retried.
    WorkerPanic,
}

impl FaultKind {
    /// Short stable label (soak reports, retry statistics).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Trap => "trap",
            FaultKind::Stall => "stall",
            FaultKind::OutOfFuel => "out_of_fuel",
            FaultKind::WorkerPanic => "worker_panic",
        }
    }
}

/// One planned fault: fire `kind` on the victim request once its first
/// attempt has retired exactly `at_step` instructions.
///
/// If the request completes before reaching `at_step`, the fault never
/// fires — a plan is a set of tripwires, not a quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What happens.
    pub kind: FaultKind,
    /// Retired-instruction count (within the attempt) at which it
    /// happens.
    pub at_step: u64,
}

/// A deterministic schedule of faults keyed by (tenant name, per-tenant
/// request sequence number).
///
/// Build one explicitly with [`inject`](Self::inject), or sample one
/// pseudo-randomly (seeded, reproducible) with [`seeded`](Self::seeded).
/// An empty plan injects nothing and costs one hash probe per slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// tenant → (request seq → fault).
    faults: HashMap<String, BTreeMap<u64, InjectedFault>>,
}

impl FaultPlan {
    /// An empty plan: no faults, zero overhead beyond a lookup.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds one fault: tenant `tenant`'s request number `request`
    /// (0-based, in per-tenant submission order) suffers `kind` at
    /// retired-instruction `at_step` of its first attempt. Replaces any
    /// fault already planned for that request.
    pub fn inject(
        mut self,
        tenant: &str,
        request: u64,
        kind: FaultKind,
        at_step: u64,
    ) -> FaultPlan {
        self.faults
            .entry(tenant.to_string())
            .or_default()
            .insert(request, InjectedFault { kind, at_step });
        self
    }

    /// Samples a plan with the seeded xorshift64* generator (the same
    /// generator the GC equivalence tests use): each of `requests` per
    /// tenant is faulted with probability `per_mille`/1000, with the
    /// fault kind cycled pseudo-randomly over all four kinds and
    /// `at_step` drawn from `1..=max_at_step`. The same inputs always
    /// produce the same plan.
    pub fn seeded(
        seed: u64,
        tenants: &[String],
        requests: u64,
        per_mille: u32,
        max_at_step: u64,
    ) -> FaultPlan {
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut plan = FaultPlan::new();
        let kinds = [
            FaultKind::Trap,
            FaultKind::Stall,
            FaultKind::OutOfFuel,
            FaultKind::WorkerPanic,
        ];
        for tenant in tenants {
            for request in 0..requests {
                if xorshift(&mut rng) % 1000 < u64::from(per_mille) {
                    let kind = kinds[(xorshift(&mut rng) % 4) as usize];
                    let at_step = 1 + xorshift(&mut rng) % max_at_step.max(1);
                    plan = plan.inject(tenant, request, kind, at_step);
                }
            }
        }
        plan
    }

    /// The fault planned for (tenant, request), if any.
    pub fn fault_for(&self, tenant: &str, request: u64) -> Option<InjectedFault> {
        self.faults.get(tenant)?.get(&request).copied()
    }

    /// Total planned faults.
    pub fn len(&self) -> usize {
        self.faults.values().map(BTreeMap::len).sum()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Planned faults of one kind (soak accounting).
    pub fn count_of(&self, kind: FaultKind) -> usize {
        self.faults
            .values()
            .flat_map(BTreeMap::values)
            .filter(|f| f.kind == kind)
            .count()
    }

    /// Installs (once per process) a panic hook that swallows the
    /// reports of **injected** worker panics — whose message is private
    /// to this harness — and forwards every real panic to the previous
    /// hook untouched. Injected panics are expected, caught, and
    /// reported as typed per-request errors; their default-hook stderr
    /// spew would drown a soak log. Call it from any test, bench, or
    /// example that runs a plan containing
    /// [`FaultKind::WorkerPanic`].
    pub fn silence_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC))
                    || info
                        .payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|s| s.contains(INJECTED_PANIC));
                if !injected {
                    previous(info);
                }
            }));
        });
    }
}

/// xorshift64* step — the exact generator of the GC randomized tests.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plans_look_up_by_tenant_and_sequence() {
        let plan = FaultPlan::new()
            .inject("alice", 2, FaultKind::Trap, 40)
            .inject("bob", 0, FaultKind::Stall, 12);
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.fault_for("alice", 2),
            Some(InjectedFault {
                kind: FaultKind::Trap,
                at_step: 40
            })
        );
        assert_eq!(plan.fault_for("alice", 1), None);
        assert_eq!(plan.fault_for("carol", 0), None);
        // Re-injecting the same key replaces.
        let plan = plan.inject("alice", 2, FaultKind::OutOfFuel, 7);
        assert_eq!(
            plan.fault_for("alice", 2).unwrap().kind,
            FaultKind::OutOfFuel
        );
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_roughly_calibrated() {
        let tenants: Vec<String> = (0..100).map(|i| format!("t{i}")).collect();
        let a = FaultPlan::seeded(42, &tenants, 10, 100, 64);
        let b = FaultPlan::seeded(42, &tenants, 10, 100, 64);
        assert_eq!(a, b, "same seed must produce the same plan");
        let c = FaultPlan::seeded(43, &tenants, 10, 100, 64);
        assert_ne!(a, c, "different seeds should differ");
        // 1000 draws at 10% → expect ~100 faults; accept a wide band.
        assert!((40..=200).contains(&a.len()), "got {} faults", a.len());
        // All step counts in range, every kind eventually drawn.
        for m in a.faults.values() {
            for f in m.values() {
                assert!((1..=64).contains(&f.at_step));
            }
        }
        let total: usize = [
            FaultKind::Trap,
            FaultKind::Stall,
            FaultKind::OutOfFuel,
            FaultKind::WorkerPanic,
        ]
        .iter()
        .map(|k| a.count_of(*k))
        .sum();
        assert_eq!(total, a.len());
    }

    #[test]
    fn zero_rate_plans_are_empty() {
        let tenants: Vec<String> = (0..50).map(|i| format!("t{i}")).collect();
        let plan = FaultPlan::seeded(7, &tenants, 10, 0, 64);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }
}
