//! The unified embedding error.

use com_core::{CycleStats, MachineError};
use com_mem::Word;
use com_stc::CompileError;
use com_verify::VerifyError;

/// A machine trap that unwound a call, with the call's accounting.
///
/// Produced by [`Session`](crate::Session) run paths
/// ([`send_raw`](crate::Session::send_raw),
/// [`resume`](crate::Session::resume)): the engine has already routed
/// through `Machine::abort_send`, so the session is re-callable and the
/// trapped call graph is collectable — this record is everything that
/// remains of the call.
#[derive(Debug, Clone, PartialEq)]
pub struct Trap {
    /// The trap that ended the call.
    pub cause: MachineError,
    /// The unwound call's **partial** [`CycleStats`]: the work the call
    /// performed from its start up to (and including) the faulting
    /// instruction, as a delta — not the session's cumulative counters.
    pub stats: CycleStats,
}

impl core::fmt::Display for Trap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} (after {} instructions of the unwound call)",
            self.cause, self.stats.instructions
        )
    }
}

impl std::error::Error for Trap {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

/// Everything that can go wrong at the embedding boundary, in one type:
/// compilation, machine traps, and the facade's own conditions (type
/// mismatches at the typed-call boundary, protocol misuse of the
/// resumable-call API).
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Source text failed to compile.
    Compile(CompileError),
    /// The compiled (or hand-assembled) image failed static
    /// verification: a structural fault — unknown opcode, wild branch,
    /// out-of-geometry slot, unresolvable constant, wrong trap-handler
    /// arity — refused at load time, before any engine boots. The
    /// boxed [`VerifyError`] carries the method/offset provenance and a
    /// stable `V00x` code.
    Verify(Box<VerifyError>),
    /// The machine refused the call before it ran (boot/start errors:
    /// allocation failures, a malformed entry). Traps raised by a
    /// *running* call surface as [`VmError::Trap`] instead, which also
    /// carries the unwound call's partial statistics.
    Machine(MachineError),
    /// A running call trapped and was unwound. The session stays
    /// serviceable: the engine's `abort_send` cleanup already ran, so
    /// the next call behaves exactly as on a fresh session.
    Trap(Box<Trap>),
    /// A typed call's result did not convert to the requested Rust type.
    Type {
        /// What the caller asked for (e.g. `"i64"`).
        expected: &'static str,
        /// The word the program actually produced.
        got: Word,
    },
    /// A selector that no loaded source ever mentioned.
    UnknownSelector(String),
    /// The step budget of a one-shot [`call`](crate::Session::call) ran
    /// out before the program finished. Use
    /// [`call_start`](crate::Session::call_start) +
    /// [`resume`](crate::Session::resume) to treat exhaustion as a yield
    /// instead of an error.
    OutOfFuel {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// [`resume`](crate::Session::resume) was called with no call in
    /// flight.
    NoCallInProgress,
    /// [`call_start`](crate::Session::call_start) (or a one-shot call) was
    /// issued while an earlier resumable call was still in flight.
    CallInProgress,
    /// A resumable call yielded without retiring a single instruction, so
    /// driving it further could never finish it — a zero-instruction
    /// slice, or a wedged machine. The [`Scheduler`](crate::Scheduler)
    /// and [`ParallelExecutor`](crate::ParallelExecutor) report this
    /// instead of spinning forever. Classified **retry-safe** by
    /// [`RetryPolicy`](crate::server::RetryPolicy): a fresh attempt gets
    /// a fresh slice and may well complete.
    Stalled {
        /// The per-resume instruction budget in force when progress
        /// stopped.
        slice: u64,
    },
    /// A worker thread panicked while driving a slice of this tenant's
    /// call — an engine invariant violation or an injected fault
    /// ([`FaultPlan`](crate::server::FaultPlan)), never an ordinary
    /// program trap (those surface as [`VmError::Trap`]). The panic was
    /// **contained to the tenant**: the driving executor
    /// ([`ParallelExecutor`](crate::ParallelExecutor) or the
    /// [`server`](crate::server) runtime) caught it, cancelled the
    /// in-flight call, and both the session and every sibling tenant
    /// remain serviceable. Classified **retry-safe** by
    /// [`RetryPolicy`](crate::server::RetryPolicy) — a panic is
    /// transient by definition — though the server still refuses to
    /// retry non-idempotent in-flight calls.
    EnginePanic {
        /// The panic payload, rendered to text.
        message: String,
    },
}

/// Renders a caught panic payload for [`VmError::EnginePanic`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl From<CompileError> for VmError {
    fn from(e: CompileError) -> Self {
        VmError::Compile(e)
    }
}

impl From<VerifyError> for VmError {
    fn from(e: VerifyError) -> Self {
        VmError::Verify(Box::new(e))
    }
}

impl From<MachineError> for VmError {
    fn from(e: MachineError) -> Self {
        match e {
            MachineError::UnknownSelector(name) => VmError::UnknownSelector(name),
            other => VmError::Machine(other),
        }
    }
}

impl VmError {
    /// Wraps a trap that unwound a running call, capturing the call's
    /// partial statistics.
    pub(crate) fn trap(cause: MachineError, stats: CycleStats) -> VmError {
        match cause {
            // Unknown selectors are a refusal, not an unwound run.
            MachineError::UnknownSelector(name) => VmError::UnknownSelector(name),
            cause => VmError::Trap(Box::new(Trap { cause, stats })),
        }
    }

    /// The machine trap underlying this error, if any (either a
    /// pre-flight refusal or an unwound run).
    pub fn machine_cause(&self) -> Option<&MachineError> {
        match self {
            VmError::Machine(e) => Some(e),
            VmError::Trap(t) => Some(&t.cause),
            _ => None,
        }
    }
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::Compile(e) => write!(f, "compile error: {e}"),
            VmError::Verify(e) => write!(f, "image failed verification: {e}"),
            VmError::Machine(e) => write!(f, "machine refused the call: {e}"),
            VmError::Trap(t) => write!(f, "machine trap unwound the call: {t}"),
            VmError::Type { expected, got } => {
                write!(f, "result {got} does not convert to {expected}")
            }
            VmError::UnknownSelector(name) => {
                write!(
                    f,
                    "unknown selector {name:?} (never mentioned by any loaded source)"
                )
            }
            VmError::OutOfFuel { budget } => {
                write!(f, "call did not complete within its {budget}-step budget")
            }
            VmError::NoCallInProgress => write!(f, "resume with no call in progress"),
            VmError::CallInProgress => {
                write!(f, "a resumable call is already in progress on this session")
            }
            VmError::Stalled { slice } => {
                write!(
                    f,
                    "call stalled: a {slice}-instruction slice retired nothing and can never finish"
                )
            }
            VmError::EnginePanic { message } => {
                write!(f, "engine panic while driving the call: {message}")
            }
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Compile(e) => Some(e),
            VmError::Verify(e) => Some(e.as_ref()),
            VmError::Machine(e) => Some(e),
            VmError::Trap(t) => Some(&t.cause),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_unknown_selector_lifts_to_the_facade_variant() {
        let e: VmError = MachineError::UnknownSelector("foo".into()).into();
        assert_eq!(e, VmError::UnknownSelector("foo".into()));
        assert!(e.to_string().contains("foo"));
    }

    #[test]
    fn trap_wrap_carries_cause_and_partial_stats() {
        let stats = CycleStats {
            instructions: 7,
            base_cycles: 14,
            ..CycleStats::default()
        };
        let e = VmError::trap(
            MachineError::BadOperands {
                opcode: com_isa::Opcode::DIV,
                reason: "division by zero",
            },
            stats,
        );
        match &e {
            VmError::Trap(t) => {
                assert!(matches!(t.cause, MachineError::BadOperands { .. }));
                assert_eq!(t.stats.instructions, 7);
            }
            other => panic!("expected Trap, got {other:?}"),
        }
        assert!(e.to_string().contains("division by zero"));
        assert!(e.machine_cause().is_some());
        assert!(std::error::Error::source(&e).is_some());
        // An unknown selector never masquerades as an unwound run.
        let e = VmError::trap(MachineError::UnknownSelector("x".into()), stats);
        assert_eq!(e, VmError::UnknownSelector("x".into()));
    }

    #[test]
    fn display_is_specific() {
        let e = VmError::Type {
            expected: "i64",
            got: Word::Atom(com_mem::AtomId(1)),
        };
        assert!(e.to_string().contains("i64"));
        let e = VmError::OutOfFuel { budget: 100 };
        assert!(e.to_string().contains("100"));
    }

    /// The stable, matchable fragment each variant's `Display` text must
    /// contain. The match is exhaustive on purpose: adding a `VmError`
    /// variant without extending the Display contract (server logs and
    /// retry classification grep for these) fails to compile here.
    fn display_fragment(e: &VmError) -> &'static str {
        match e {
            VmError::Compile(_) => "compile error",
            VmError::Verify(_) => "image failed verification",
            VmError::Machine(_) => "machine refused the call",
            VmError::Trap(_) => "machine trap unwound the call",
            VmError::Type { .. } => "does not convert to",
            VmError::UnknownSelector(_) => "unknown selector",
            VmError::OutOfFuel { .. } => "did not complete within",
            VmError::NoCallInProgress => "no call in progress",
            VmError::CallInProgress => "already in progress",
            VmError::Stalled { .. } => "call stalled",
            VmError::EnginePanic { .. } => "engine panic",
        }
    }

    /// One constructed sample of every `VmError` variant.
    fn samples() -> Vec<VmError> {
        let compile = match com_stc::compile_com("class", com_stc::CompileOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("malformed source must not compile"),
        };
        let stats = CycleStats {
            instructions: 3,
            ..CycleStats::default()
        };
        let verify = com_verify::VerifyError {
            method: com_verify::Provenance {
                index: Some(0),
                name: "T ≫ bad".into(),
            },
            offset: Some(2),
            kind: com_verify::VerifyErrorKind::TooManyArgs { n_args: 31 },
        };
        vec![
            VmError::Compile(compile),
            VmError::Verify(Box::new(verify)),
            VmError::Machine(MachineError::NoContext),
            VmError::Trap(Box::new(Trap {
                cause: MachineError::BadOperands {
                    opcode: com_isa::Opcode::DIV,
                    reason: "division by zero",
                },
                stats,
            })),
            VmError::Type {
                expected: "i64",
                got: Word::Atom(com_mem::AtomId(1)),
            },
            VmError::UnknownSelector("frob".into()),
            VmError::OutOfFuel { budget: 7 },
            VmError::NoCallInProgress,
            VmError::CallInProgress,
            VmError::Stalled { slice: 9 },
            VmError::EnginePanic {
                message: "boom".into(),
            },
        ]
    }

    #[test]
    fn every_variant_displays_its_stable_fragment() {
        for e in samples() {
            let text = e.to_string();
            assert!(
                text.contains(display_fragment(&e)),
                "{e:?} renders {text:?} without its stable fragment"
            );
            // Display text is one line: log records stay grep-able.
            assert!(!text.contains('\n'), "{e:?} renders multiple lines");
        }
    }

    #[test]
    fn source_chains_reach_the_underlying_cause() {
        use std::error::Error;
        for e in samples() {
            match &e {
                // Wrapping variants expose the cause through source().
                VmError::Compile(_)
                | VmError::Verify(_)
                | VmError::Machine(_)
                | VmError::Trap(_) => {
                    assert!(e.source().is_some(), "{e:?} lost its source");
                }
                // Facade-originated conditions are the root cause.
                _ => assert!(e.source().is_none(), "{e:?} fabricated a source"),
            }
        }
        // Trap itself chains to the machine error, two levels deep.
        let trap = Trap {
            cause: MachineError::Mem(com_mem::MemError::UnknownTeam(com_mem::TeamId(1))),
            stats: CycleStats::default(),
        };
        assert!(trap.source().unwrap().source().is_some());
    }

    #[test]
    fn panic_payloads_render_to_text() {
        assert_eq!(panic_message(&"static str"), "static str");
        assert_eq!(panic_message(&String::from("owned")), "owned");
        assert_eq!(panic_message(&42_u32), "non-string panic payload");
    }
}
