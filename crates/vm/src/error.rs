//! The unified embedding error.

use com_core::{CycleStats, MachineError};
use com_mem::Word;
use com_stc::CompileError;

/// A machine trap that unwound a call, with the call's accounting.
///
/// Produced by [`Session`](crate::Session) run paths
/// ([`send_raw`](crate::Session::send_raw),
/// [`resume`](crate::Session::resume)): the engine has already routed
/// through `Machine::abort_send`, so the session is re-callable and the
/// trapped call graph is collectable — this record is everything that
/// remains of the call.
#[derive(Debug, Clone, PartialEq)]
pub struct Trap {
    /// The trap that ended the call.
    pub cause: MachineError,
    /// The unwound call's **partial** [`CycleStats`]: the work the call
    /// performed from its start up to (and including) the faulting
    /// instruction, as a delta — not the session's cumulative counters.
    pub stats: CycleStats,
}

impl core::fmt::Display for Trap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} (after {} instructions of the unwound call)",
            self.cause, self.stats.instructions
        )
    }
}

/// Everything that can go wrong at the embedding boundary, in one type:
/// compilation, machine traps, and the facade's own conditions (type
/// mismatches at the typed-call boundary, protocol misuse of the
/// resumable-call API).
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Source text failed to compile.
    Compile(CompileError),
    /// The machine refused the call before it ran (boot/start errors:
    /// allocation failures, a malformed entry). Traps raised by a
    /// *running* call surface as [`VmError::Trap`] instead, which also
    /// carries the unwound call's partial statistics.
    Machine(MachineError),
    /// A running call trapped and was unwound. The session stays
    /// serviceable: the engine's `abort_send` cleanup already ran, so
    /// the next call behaves exactly as on a fresh session.
    Trap(Box<Trap>),
    /// A typed call's result did not convert to the requested Rust type.
    Type {
        /// What the caller asked for (e.g. `"i64"`).
        expected: &'static str,
        /// The word the program actually produced.
        got: Word,
    },
    /// A selector that no loaded source ever mentioned.
    UnknownSelector(String),
    /// The step budget of a one-shot [`call`](crate::Session::call) ran
    /// out before the program finished. Use
    /// [`call_start`](crate::Session::call_start) +
    /// [`resume`](crate::Session::resume) to treat exhaustion as a yield
    /// instead of an error.
    OutOfFuel {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// [`resume`](crate::Session::resume) was called with no call in
    /// flight.
    NoCallInProgress,
    /// [`call_start`](crate::Session::call_start) (or a one-shot call) was
    /// issued while an earlier resumable call was still in flight.
    CallInProgress,
    /// A resumable call yielded without retiring a single instruction, so
    /// driving it further could never finish it — a zero-instruction
    /// slice, or a wedged machine. The [`Scheduler`](crate::Scheduler)
    /// and [`ParallelExecutor`](crate::ParallelExecutor) report this
    /// instead of spinning forever.
    Stalled {
        /// The per-resume instruction budget in force when progress
        /// stopped.
        slice: u64,
    },
}

impl From<CompileError> for VmError {
    fn from(e: CompileError) -> Self {
        VmError::Compile(e)
    }
}

impl From<MachineError> for VmError {
    fn from(e: MachineError) -> Self {
        match e {
            MachineError::UnknownSelector(name) => VmError::UnknownSelector(name),
            other => VmError::Machine(other),
        }
    }
}

impl VmError {
    /// Wraps a trap that unwound a running call, capturing the call's
    /// partial statistics.
    pub(crate) fn trap(cause: MachineError, stats: CycleStats) -> VmError {
        match cause {
            // Unknown selectors are a refusal, not an unwound run.
            MachineError::UnknownSelector(name) => VmError::UnknownSelector(name),
            cause => VmError::Trap(Box::new(Trap { cause, stats })),
        }
    }

    /// The machine trap underlying this error, if any (either a
    /// pre-flight refusal or an unwound run).
    pub fn machine_cause(&self) -> Option<&MachineError> {
        match self {
            VmError::Machine(e) => Some(e),
            VmError::Trap(t) => Some(&t.cause),
            _ => None,
        }
    }
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::Compile(e) => write!(f, "compile error: {e}"),
            VmError::Machine(e) => write!(f, "machine refused the call: {e}"),
            VmError::Trap(t) => write!(f, "machine trap unwound the call: {t}"),
            VmError::Type { expected, got } => {
                write!(f, "result {got} does not convert to {expected}")
            }
            VmError::UnknownSelector(name) => {
                write!(
                    f,
                    "unknown selector {name:?} (never mentioned by any loaded source)"
                )
            }
            VmError::OutOfFuel { budget } => {
                write!(f, "call did not complete within its {budget}-step budget")
            }
            VmError::NoCallInProgress => write!(f, "resume with no call in progress"),
            VmError::CallInProgress => {
                write!(f, "a resumable call is already in progress on this session")
            }
            VmError::Stalled { slice } => {
                write!(
                    f,
                    "call stalled: a {slice}-instruction slice retired nothing and can never finish"
                )
            }
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Compile(e) => Some(e),
            VmError::Machine(e) => Some(e),
            VmError::Trap(t) => Some(&t.cause),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_unknown_selector_lifts_to_the_facade_variant() {
        let e: VmError = MachineError::UnknownSelector("foo".into()).into();
        assert_eq!(e, VmError::UnknownSelector("foo".into()));
        assert!(e.to_string().contains("foo"));
    }

    #[test]
    fn trap_wrap_carries_cause_and_partial_stats() {
        let stats = CycleStats {
            instructions: 7,
            base_cycles: 14,
            ..CycleStats::default()
        };
        let e = VmError::trap(
            MachineError::BadOperands {
                opcode: com_isa::Opcode::DIV,
                reason: "division by zero",
            },
            stats,
        );
        match &e {
            VmError::Trap(t) => {
                assert!(matches!(t.cause, MachineError::BadOperands { .. }));
                assert_eq!(t.stats.instructions, 7);
            }
            other => panic!("expected Trap, got {other:?}"),
        }
        assert!(e.to_string().contains("division by zero"));
        assert!(e.machine_cause().is_some());
        assert!(std::error::Error::source(&e).is_some());
        // An unknown selector never masquerades as an unwound run.
        let e = VmError::trap(MachineError::UnknownSelector("x".into()), stats);
        assert_eq!(e, VmError::UnknownSelector("x".into()));
    }

    #[test]
    fn display_is_specific() {
        let e = VmError::Type {
            expected: "i64",
            got: Word::Atom(com_mem::AtomId(1)),
        };
        assert!(e.to_string().contains("i64"));
        let e = VmError::OutOfFuel { budget: 100 };
        assert!(e.to_string().contains("100"));
    }
}
