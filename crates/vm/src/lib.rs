//! **com-vm** — the embedding facade over the COM engine: compile once,
//! serve many tenants.
//!
//! The engine crate (`com-core`) exposes a lab bench: one [`Machine`]
//! married to one image, raw [`Word`]s at the boundary, a step budget that
//! surfaces as an error. This crate is the API the machine was *built
//! for* — many concurrent object programs over shared program structure:
//!
//! * [`VmBuilder`] compiles sources **once** into a shared, immutable
//!   [`Arc<LoadedImage>`] — classes, atoms, selectors, and every method
//!   pre-decoded to the interpreter's lowered fast-path form.
//! * [`Vm::session`] spawns cheap, isolated [`Session`]s that own only
//!   mutable state (object space, context cache, statistics). Spinning a
//!   session up never re-compiles or re-decodes.
//! * Sessions expose **typed calls** ([`ToWord`]/[`FromWord`]):
//!   `session.call::<i64>("factorial", 12)?`, under one [`VmError`].
//! * Execution is **resumable**: [`Session::call_start`] +
//!   [`Session::resume`] return [`Outcome::Yielded`] when a budget runs
//!   out, instead of abusing a step-limit error — and the cooperative
//!   [`Scheduler`] round-robins any number of in-flight sessions with
//!   per-tenant results and statistics bit-identical to solo runs.
//! * Execution is **parallel**: the whole engine layer is `Send`, and
//!   the [`ParallelExecutor`] drains any number of in-flight sessions
//!   across a fixed pool of worker threads — same yield cadence, same
//!   bit-identical per-tenant results and statistics, N tenants on M
//!   cores.
//! * Execution is **supervised**: the [`server`] module wraps the pool
//!   in a long-lived service runtime — bounded admission with typed
//!   backpressure, per-request deadlines, per-tenant fuel budgets and
//!   weighted fair scheduling, retry with capped backoff, overload
//!   shedding, a drain that never loses a session, and a deterministic
//!   fault-injection harness ([`server::FaultPlan`]) to prove all of it.
//!
//! # Thread safety
//!
//! The exact contract, compile-time asserted in this crate's tests:
//!
//! * [`Vm`]`: Send + Sync` — one `Vm` (and its shared
//!   [`Arc<LoadedImage>`]) may be cloned and used from any number of
//!   threads at once.
//! * [`Session`]`: Send` but **not** `Sync` — a session may be *moved*
//!   between threads freely (start a call on one thread, resume it on
//!   another; results and [`CycleStats`] are unaffected), but may only
//!   be driven by one thread at a time. This is `&mut`-style exclusive
//!   ownership, enforced by the type system — no locks, no atomics on
//!   the hot path. Sharing a `&Session` across threads does not
//!   compile:
//!
//! ```compile_fail,E0277
//! fn assert_sync<T: Sync>() {}
//! assert_sync::<com_vm::Session>(); // Session is !Sync by design
//! ```
//!
//! ```
//! use com_vm::{Outcome, Vm};
//!
//! # fn main() -> Result<(), com_vm::VmError> {
//! // Compile once...
//! let vm = Vm::new(
//!     "class SmallInteger method factorial
//!        self < 2 ifTrue: [ ^1 ]. ^self * (self - 1) factorial
//!      end end",
//! )?;
//!
//! // ...serve many isolated tenants.
//! let mut alice = vm.session()?;
//! let mut bob = vm.session()?;
//! assert_eq!(alice.call::<i64>("factorial", 12)?, 479_001_600);
//!
//! // Resumable execution: run bob in 100-instruction slices.
//! bob.call_start("factorial", 20)?;
//! let answer = loop {
//!     match bob.resume::<i64>(100)? {
//!         Outcome::Done(n) => break n,
//!         Outcome::Yielded => { /* interleave other tenants here */ }
//!     }
//! };
//! assert_eq!(answer, 2_432_902_008_176_640_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod convert;
mod error;
mod pool;
mod sched;
pub mod server;
mod session;

pub use convert::{FromWord, ToWord};
pub use error::{Trap, VmError};
pub use pool::{ParallelExecutor, TenantRun};
pub use sched::{Scheduler, TaskId};
pub use session::{Outcome, Session};

// The engine types an embedder meets at this boundary.
pub use com_core::{
    CycleStats, GcTotals, LoadedImage, Machine, MachineConfig, ProgramImage, RunResult,
};
pub use com_mem::Word;
pub use com_stc::CompileOptions;
pub use com_verify::ImageFacts;

use com_obj::ItlbKey;
use std::sync::{Arc, OnceLock};

/// Builds a [`Vm`]: gathers source text, compiles it once, pre-decodes
/// every method.
///
/// ```
/// # fn main() -> Result<(), com_vm::VmError> {
/// let vm = com_vm::Vm::builder()
///     .source("class SmallInteger method double ^self + self end end")
///     .source("class SmallInteger method quad ^self double double end end")
///     .build()?;
/// assert_eq!(vm.session()?.call::<i64>("quad", 4)?, 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VmBuilder {
    sources: Vec<String>,
    options: CompileOptions,
    config: MachineConfig,
    verify: bool,
    preseed: bool,
}

impl Default for VmBuilder {
    fn default() -> VmBuilder {
        VmBuilder::new()
    }
}

impl VmBuilder {
    /// An empty builder with default compile options and machine config.
    /// Static verification is **on** by default.
    pub fn new() -> VmBuilder {
        VmBuilder {
            sources: Vec::new(),
            options: CompileOptions::default(),
            config: MachineConfig::default(),
            verify: true,
            preseed: false,
        }
    }

    /// Appends source text (classes may be reopened across chunks; the
    /// standard library is prepended once at compile time). Compile
    /// errors report positions in the joined text — the same coordinate
    /// space `compile_com` already uses for its stdlib-prepended input —
    /// so a position from a later chunk is offset by the chunks before
    /// it.
    pub fn source(mut self, text: &str) -> VmBuilder {
        self.sources.push(text.to_string());
        self
    }

    /// Replaces the compile options (inlining ablations, stdlib).
    pub fn options(mut self, options: CompileOptions) -> VmBuilder {
        self.options = options;
        self
    }

    /// Replaces the machine configuration every session boots with.
    pub fn config(mut self, config: MachineConfig) -> VmBuilder {
        self.config = config;
        self
    }

    /// Toggles load-time static verification (on by default). Turning it
    /// off admits images the verifier would refuse; the engine still
    /// defends itself with typed runtime traps, never panics.
    pub fn verify(mut self, verify: bool) -> VmBuilder {
        self.verify = verify;
        self
    }

    /// Toggles boot-time ITLB pre-seeding (off by default). When on,
    /// each spawned session's translation buffer is warmed with the
    /// image's statically resolved monomorphic send sites (the
    /// whole-image analysis in [`Vm::facts`]) before the first
    /// instruction runs — those sites then hit the buffer instead of
    /// paying a first-touch full-association lookup. Every pre-seeded
    /// entry is exactly what the first real dispatch would have filled,
    /// so results and execution are unchanged; only cold-start lookup
    /// costs move. The analysis runs lazily once per `Vm` and is shared
    /// by all sessions.
    pub fn preseed_itlb(mut self, preseed: bool) -> VmBuilder {
        self.preseed = preseed;
        self
    }

    /// Compiles the gathered sources once, **verifies** the image (unless
    /// [`verify(false)`](VmBuilder::verify)), and prepares the shared
    /// image.
    ///
    /// # Errors
    ///
    /// [`VmError::Compile`] on any lexical, syntactic or semantic error;
    /// [`VmError::Verify`] if the compiled image fails static
    /// verification.
    pub fn build(self) -> Result<Vm, VmError> {
        let joined = self.sources.join("\n");
        let image = com_stc::compile_com(&joined, self.options)?;
        if self.verify {
            com_verify::verify_image(&image)?;
        }
        Ok(Vm {
            image: Arc::new(LoadedImage::prepare_for(image, &self.config)),
            config: self.config,
            preseed: self.preseed,
            analysis: Arc::new(OnceLock::new()),
        })
    }
}

/// The lazily-computed whole-image analysis a `Vm` shares across its
/// sessions: the facts artifact plus the pre-extracted seeding keys.
#[derive(Debug)]
struct Analysis {
    facts: ImageFacts,
    keys: Vec<ItlbKey>,
}

/// A compiled program ready to serve tenants: one shared, immutable
/// [`LoadedImage`] plus the [`MachineConfig`] sessions boot with.
///
/// `Vm` is cheap to clone (the image is behind an [`Arc`]) and is
/// `Send + Sync`; `Session` is `Send`, so sessions really may be
/// spawned and driven from any thread — including started on one and
/// resumed on another (see the [crate docs](crate#thread-safety) for
/// the full contract, and [`ParallelExecutor`] for the batteries-
/// included worker pool).
#[derive(Debug, Clone)]
pub struct Vm {
    image: Arc<LoadedImage>,
    config: MachineConfig,
    preseed: bool,
    analysis: Arc<OnceLock<Option<Analysis>>>,
}

impl Vm {
    /// Compiles `source` with default options into a ready `Vm` — the
    /// one-liner for the common case.
    ///
    /// # Errors
    ///
    /// [`VmError::Compile`] on any compile error.
    pub fn new(source: &str) -> Result<Vm, VmError> {
        Vm::builder().source(source).build()
    }

    /// Starts a builder.
    pub fn builder() -> VmBuilder {
        VmBuilder::new()
    }

    /// Wraps an already-compiled (or hand-assembled) [`ProgramImage`],
    /// refusing it with [`VmError::Verify`] if it fails static
    /// verification — a malformed image never reaches an engine.
    ///
    /// # Errors
    ///
    /// [`VmError::Verify`] with method/offset provenance for the first
    /// structural fault.
    pub fn from_image(image: ProgramImage, config: MachineConfig) -> Result<Vm, VmError> {
        com_verify::verify_image(&image)?;
        Ok(Vm {
            image: Arc::new(LoadedImage::prepare_for(image, &config)),
            config,
            preseed: false,
            analysis: Arc::new(OnceLock::new()),
        })
    }

    /// Spawns a fresh, isolated tenant session over the shared image.
    ///
    /// This is the cheap path: no compilation, no decoding — the new
    /// session's machine stores the image's code words into its own
    /// object space and binds the shared pre-decoded bodies.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the boot.
    pub fn session(&self) -> Result<Session, VmError> {
        let mut session = Session::boot(Arc::clone(&self.image), self.config)?;
        if self.preseed {
            if let Some(analysis) = self.analysis() {
                session.machine_mut().preseed_itlb(&analysis.keys);
            }
        }
        Ok(session)
    }

    /// The whole-image analysis facts (class inference, send-site
    /// resolution, call graph, fuel bounds) for the compiled image,
    /// computed lazily on first use and shared by all clones of this
    /// `Vm`. `None` when the image exceeds the analysis's class budget
    /// or was admitted with verification disabled and does not verify.
    pub fn facts(&self) -> Option<&ImageFacts> {
        self.analysis().map(|a| &a.facts)
    }

    fn analysis(&self) -> Option<&Analysis> {
        self.analysis
            .get_or_init(|| {
                let facts = ImageFacts::analyze(self.image.image()).ok()?;
                let keys = facts.preseed_keys();
                Some(Analysis { facts, keys })
            })
            .as_ref()
    }

    /// The shared image.
    pub fn image(&self) -> &Arc<LoadedImage> {
        &self.image
    }

    /// The machine configuration sessions boot with.
    pub fn config(&self) -> MachineConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FACTORIAL: &str = r#"
        class SmallInteger
          method factorial | acc |
            acc := 1.
            1 to: self do: [ :i | acc := acc * i ].
            ^acc
          end
        end
    "#;

    #[test]
    fn typed_call_round_trip() {
        let vm = Vm::new(FACTORIAL).unwrap();
        let mut s = vm.session().unwrap();
        assert_eq!(s.call::<i64>("factorial", 12).unwrap(), 479_001_600);
        // Typed mismatch surfaces as a VmError::Type, not a panic.
        match s.call::<f64>("factorial", 3) {
            Err(VmError::Type {
                expected: "f64", ..
            }) => {}
            other => panic!("expected type error, got {other:?}"),
        }
    }

    #[test]
    fn sessions_share_one_image_and_are_isolated() {
        let vm = Vm::new(FACTORIAL).unwrap();
        assert_eq!(vm.image().predecoded(), vm.image().methods());
        let mut a = vm.session().unwrap();
        let mut b = vm.session().unwrap();
        assert!(Arc::ptr_eq(a.image(), b.image()));
        assert_eq!(a.call::<i64>("factorial", 10).unwrap(), 3_628_800);
        // b's statistics are untouched by a's work.
        assert_eq!(b.stats().instructions, 0);
        assert_eq!(b.call::<i64>("factorial", 5).unwrap(), 120);
    }

    #[test]
    fn unknown_selector_is_an_error() {
        let vm = Vm::new(FACTORIAL).unwrap();
        let mut s = vm.session().unwrap();
        match s.call::<i64>("frobnicate", 1) {
            Err(VmError::UnknownSelector(name)) => assert_eq!(name, "frobnicate"),
            other => panic!("expected UnknownSelector, got {other:?}"),
        }
        // The session survives the refused call.
        assert_eq!(s.call::<i64>("factorial", 3).unwrap(), 6);
    }

    #[test]
    fn out_of_fuel_is_an_error_only_for_one_shot_calls() {
        let vm = Vm::new(FACTORIAL).unwrap();
        let mut s = vm.session().unwrap();
        s.set_step_limit(10);
        match s.call::<i64>("factorial", 100) {
            Err(VmError::OutOfFuel { budget: 10 }) => {}
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
        s.set_step_limit(u64::MAX);
        assert_eq!(s.call::<i64>("factorial", 5).unwrap(), 120);
    }

    #[test]
    fn resumable_call_yields_then_completes_bit_identically() {
        let vm = Vm::new(FACTORIAL).unwrap();
        let mut one_shot = vm.session().unwrap();
        let expected = one_shot.call::<i64>("factorial", 12).unwrap();
        let solo = one_shot.last_run().unwrap().clone();

        let mut sliced = vm.session().unwrap();
        sliced.call_start("factorial", 12).unwrap();
        assert!(sliced.in_flight());
        let mut yields = 0;
        let got = loop {
            match sliced.resume::<i64>(7).unwrap() {
                Outcome::Done(n) => break n,
                Outcome::Yielded => yields += 1,
            }
        };
        assert_eq!(got, expected);
        assert!(yields > 0, "a 7-step slice must yield at least once");
        assert!(!sliced.in_flight());
        let run = sliced.last_run().unwrap();
        assert_eq!(run.stats, solo.stats, "sliced run diverged from solo run");
        assert_eq!(run.steps, solo.steps);
    }

    #[test]
    fn resumable_protocol_misuse_is_reported() {
        let vm = Vm::new(FACTORIAL).unwrap();
        let mut s = vm.session().unwrap();
        assert_eq!(s.resume::<i64>(10), Err(VmError::NoCallInProgress));
        s.call_start("factorial", 50).unwrap();
        assert_eq!(s.call_start("factorial", 1), Err(VmError::CallInProgress));
        match s.call::<i64>("factorial", 1) {
            Err(VmError::CallInProgress) => {}
            other => panic!("expected CallInProgress, got {other:?}"),
        }
        s.cancel();
        assert_eq!(s.call::<i64>("factorial", 3).unwrap(), 6);
    }

    #[test]
    fn cancel_releases_the_abandoned_call_graph() {
        let vm = Vm::new(FACTORIAL).unwrap();
        let mut s = vm.session().unwrap();
        // Baseline: a completed call, heap collected.
        let _: i64 = s.call("factorial", 8).unwrap();
        let roots = s.machine().code_root_count();
        s.machine_mut().collect_garbage().unwrap();
        let live = s.space().memory().buddy().allocated_words();
        // Start a call, run a few slices, abandon it.
        s.call_start("factorial", 500).unwrap();
        assert_eq!(s.resume::<i64>(50).unwrap(), Outcome::Yielded);
        s.cancel();
        assert_eq!(
            s.machine().code_root_count(),
            roots,
            "cancel must un-root the abandoned entry method"
        );
        s.machine_mut().collect_garbage().unwrap();
        assert!(
            s.space().memory().buddy().allocated_words() <= live,
            "abandoned call graph must be collectable after cancel"
        );
        // The session still works.
        assert_eq!(s.call::<i64>("factorial", 3).unwrap(), 6);
    }

    #[test]
    fn scheduler_round_robins_fairly() {
        let vm = Vm::new(FACTORIAL).unwrap();
        let mut sched = Scheduler::new(50);
        let mut ids = Vec::new();
        for n in [5i64, 10, 15, 20] {
            let mut s = vm.session().unwrap();
            s.call_start("factorial", n).unwrap();
            ids.push(sched.spawn(s).unwrap());
        }
        sched.run();
        assert_eq!(sched.result_as::<i64>(ids[0]).unwrap(), Some(120));
        assert_eq!(
            sched.result_as::<i64>(ids[3]).unwrap(),
            Some(2_432_902_008_176_640_000)
        );
        // Fairness: the longest task got at least as many slices as the
        // shortest, and every task got at least one.
        assert!(sched.slices(ids[3]) >= sched.slices(ids[0]));
        assert!(sched.slices(ids[0]) >= 1);
        assert!(sched.rounds() >= sched.slices(ids[3]));
    }

    #[test]
    fn scheduler_interleaving_matches_solo_stats() {
        let vm = Vm::new(FACTORIAL).unwrap();
        // Solo baselines.
        let mut solos = Vec::new();
        for n in [6i64, 11, 17] {
            let mut s = vm.session().unwrap();
            let _ = s.call::<i64>("factorial", n).unwrap();
            solos.push(s.last_run().unwrap().clone());
        }
        // The same three workloads, interleaved in 13-step slices.
        let mut sched = Scheduler::new(13);
        let mut ids = Vec::new();
        for n in [6i64, 11, 17] {
            let mut s = vm.session().unwrap();
            s.call_start("factorial", n).unwrap();
            ids.push(sched.spawn(s).unwrap());
        }
        sched.run();
        for (i, id) in ids.iter().enumerate() {
            let run = sched.session(*id).unwrap().last_run().unwrap();
            assert_eq!(run.result, solos[i].result);
            assert_eq!(run.stats, solos[i].stats, "task {i} stats diverged");
        }
    }

    #[test]
    fn trapped_task_does_not_stall_the_scheduler() {
        let vm = Vm::new(
            "class SmallInteger
               method boom ^1 / (self - self) end
               method fine ^self + 1 end
             end",
        )
        .unwrap();
        let mut sched = Scheduler::new(100);
        let mut bad = vm.session().unwrap();
        bad.call_start("boom", 3).unwrap();
        let bad_id = sched.spawn(bad).unwrap();
        let mut good = vm.session().unwrap();
        good.call_start("fine", 3).unwrap();
        let good_id = sched.spawn(good).unwrap();
        sched.run();
        assert!(sched.error(bad_id).is_some());
        assert_eq!(sched.result_as::<i64>(good_id).unwrap(), Some(4));
    }

    #[test]
    fn from_image_supports_hand_assembled_programs() {
        use com_isa::{Assembler, Opcode, Operand};
        use com_mem::ClassId;
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("double");
        let mut asm = Assembler::new("SmallInteger>>double", 1);
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        let vm = Vm::from_image(img, MachineConfig::default()).unwrap();
        assert_eq!(vm.session().unwrap().call::<i64>("double", 21).unwrap(), 42);
    }

    #[test]
    fn from_image_refuses_malformed_images_with_a_typed_error() {
        use com_isa::{Assembler, Opcode, Operand};
        use com_mem::ClassId;
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("wild");
        let mut asm = Assembler::new("SmallInteger>>wild", 1);
        // Slot 63 encodes but lies beyond the context geometry.
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(63),
            Operand::Cur(63),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        match Vm::from_image(img, MachineConfig::default()) {
            Err(VmError::Verify(e)) => {
                assert_eq!(e.code(), "V003");
                assert!(e.to_string().contains("wild"), "{e}");
            }
            other => panic!("expected VmError::Verify, got {other:?}"),
        }
    }

    #[test]
    fn preseeded_sessions_pay_fewer_cold_lookups() {
        let plain = Vm::new(FACTORIAL).unwrap();
        let seeded = Vm::builder()
            .source(FACTORIAL)
            .preseed_itlb(true)
            .build()
            .unwrap();
        let facts = seeded.facts().expect("whole-image analysis");
        assert!(facts.summary.monomorphic > 0);
        let mut a = plain.session().unwrap();
        let mut b = seeded.session().unwrap();
        assert_eq!(a.call::<i64>("factorial", 10).unwrap(), 3_628_800);
        assert_eq!(b.call::<i64>("factorial", 10).unwrap(), 3_628_800);
        assert_eq!(
            a.stats().instructions,
            b.stats().instructions,
            "pre-seeding must not change execution"
        );
        assert!(
            b.stats().full_lookups < a.stats().full_lookups,
            "pre-seeded session must skip first-touch lookups ({} vs {})",
            b.stats().full_lookups,
            a.stats().full_lookups
        );
    }

    #[test]
    fn builder_verification_can_be_disabled() {
        // The stdlib-backed compile verifies cleanly either way; the
        // toggle just must not change the result.
        let vm = Vm::builder()
            .source(FACTORIAL)
            .verify(false)
            .build()
            .unwrap();
        assert_eq!(
            vm.session().unwrap().call::<i64>("factorial", 6).unwrap(),
            720
        );
    }
}
