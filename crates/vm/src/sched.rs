//! A cooperative round-robin scheduler over resumable sessions.

use com_mem::Word;

use crate::{FromWord, Outcome, Session, VmError};

/// Handle to a task spawned on a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

#[derive(Debug)]
struct Task {
    session: Session,
    result: Option<Word>,
    error: Option<VmError>,
    slices: u64,
}

/// Interleaves any number of in-flight [`Session`] calls on one thread by
/// giving each a fixed instruction budget per round, in spawn order.
///
/// Because sessions are fully isolated (each owns its object space,
/// caches and statistics) and [`Session::resume`] yields at consistent
/// machine states, interleaving N tenants produces, for every tenant,
/// results and [`com_core::CycleStats`] bit-identical to running it
/// alone — fairness costs nothing in fidelity. The `bench_sessions`
/// pipeline asserts exactly that.
///
/// ```
/// # fn main() -> Result<(), com_vm::VmError> {
/// let vm = com_vm::Vm::new(
///     "class SmallInteger method tri ^self * (self + 1) / 2 end end",
/// )?;
/// let mut sched = com_vm::Scheduler::new(500);
/// let mut ids = Vec::new();
/// for n in [10i64, 100, 1000] {
///     let mut s = vm.session()?;
///     s.call_start("tri", n)?;
///     ids.push(sched.spawn(s)?);
/// }
/// sched.run();
/// assert_eq!(sched.result_as::<i64>(ids[2])?, Some(500_500));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Scheduler {
    slice: u64,
    tasks: Vec<Task>,
    rounds: u64,
}

impl Scheduler {
    /// A scheduler granting each task `slice` instructions per round.
    ///
    /// A zero slice can never make progress; rather than spin, a
    /// [`run`](Self::run) over it reports every unfinished task as
    /// [`VmError::Stalled`] (the progress check catches any other
    /// zero-progress state the same way).
    pub fn new(slice: u64) -> Scheduler {
        Scheduler {
            slice,
            tasks: Vec::new(),
            rounds: 0,
        }
    }

    /// Adds a session whose resumable call is in flight (see
    /// [`Session::call_start`]).
    ///
    /// # Errors
    ///
    /// [`VmError::NoCallInProgress`] if the session has nothing to resume.
    pub fn spawn(&mut self, session: Session) -> Result<TaskId, VmError> {
        if !session.in_flight() {
            return Err(VmError::NoCallInProgress);
        }
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            session,
            result: None,
            error: None,
            slices: 0,
        });
        Ok(id)
    }

    /// Runs one round-robin sweep: every unfinished task gets one slice.
    /// Returns `true` when every task has finished (or trapped). Per-task
    /// traps are recorded and reported by [`error`](Self::error) as
    /// [`VmError::Trap`] (cause + the unwound call's partial
    /// [`com_core::CycleStats`]) — a trapped task simply stops being
    /// scheduled, its session stays serviceable (reclaim it via
    /// [`into_sessions`](Self::into_sessions)), and every other tenant's
    /// results and statistics remain bit-identical to solo runs (the trap
    /// unwound inside that tenant's own machine; nothing is shared).
    pub fn tick(&mut self) -> bool {
        let slice = self.slice;
        let mut all_done = true;
        for task in &mut self.tasks {
            if task.result.is_some() || task.error.is_some() {
                continue;
            }
            task.slices += 1;
            match task.session.resume_raw_guarded(slice) {
                Ok(Outcome::Done(w)) => task.result = Some(w),
                Ok(Outcome::Yielded) => all_done = false,
                // Includes Stalled: a yield that retired nothing can
                // never finish, and rescheduling it would spin forever.
                Err(e) => task.error = Some(e),
            }
        }
        self.rounds += 1;
        all_done
    }

    /// Round-robins until every task finishes, traps, or stalls (a task
    /// that yields without retiring an instruction is reported as
    /// [`VmError::Stalled`] via [`error`](Self::error) instead of being
    /// rescheduled forever).
    pub fn run(&mut self) {
        while !self.tick() {}
    }

    /// Number of tasks spawned.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task was spawned.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Rounds swept so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// A finished task's raw result word.
    pub fn result(&self, id: TaskId) -> Option<Word> {
        self.tasks.get(id.0).and_then(|t| t.result)
    }

    /// A finished task's result, converted.
    ///
    /// # Errors
    ///
    /// [`VmError::Type`] if the result does not convert.
    pub fn result_as<R: FromWord>(&self, id: TaskId) -> Result<Option<R>, VmError> {
        match self.result(id) {
            Some(w) => Ok(Some(R::from_word(w)?)),
            None => Ok(None),
        }
    }

    /// The trap that ended a task, if it trapped.
    pub fn error(&self, id: TaskId) -> Option<&VmError> {
        self.tasks.get(id.0).and_then(|t| t.error.as_ref())
    }

    /// Slices granted to a task so far (fairness observability).
    pub fn slices(&self, id: TaskId) -> u64 {
        self.tasks.get(id.0).map_or(0, |t| t.slices)
    }

    /// Borrow of a task's session (statistics inspection).
    pub fn session(&self, id: TaskId) -> Option<&Session> {
        self.tasks.get(id.0).map(|t| &t.session)
    }

    /// Tears the scheduler down into its sessions, in spawn order.
    pub fn into_sessions(self) -> Vec<Session> {
        self.tasks.into_iter().map(|t| t.session).collect()
    }
}
