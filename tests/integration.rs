//! Cross-crate integration tests: whole programs through the compiler,
//! both machines, the memory system and the GC.

use com_machine::core::{Machine, MachineConfig, MachineError};
use com_machine::fith::FithMachine;
use com_machine::mem::{AllocKind, Word};
use com_machine::stc::{compile_com, compile_fith, CompileOptions};
use com_machine::workloads;

#[test]
fn ackermann_values() {
    let src = r#"
        class SmallInteger
          method ack: n
            self = 0 ifTrue: [ ^n + 1 ].
            n = 0 ifTrue: [ ^(self - 1) ack: 1 ].
            ^(self - 1) ack: (self ack: n - 1)
          end
        end
    "#;
    let image = compile_com(src, CompileOptions::default()).unwrap();
    let mut m = Machine::new(MachineConfig::default());
    m.load(&image).unwrap();
    let a22 = m
        .send("ack:", Word::Int(2), &[Word::Int(2)], 10_000_000)
        .unwrap();
    assert_eq!(a22.result, Word::Int(7));
    let a23 = m
        .send("ack:", Word::Int(2), &[Word::Int(3)], 10_000_000)
        .unwrap();
    assert_eq!(a23.result, Word::Int(9));
    // Deep recursion pushed contexts through the 32-block cache: the
    // copyback engine must have engaged without corrupting state.
    let a31 = m
        .send("ack:", Word::Int(3), &[Word::Int(3)], 50_000_000)
        .unwrap();
    assert_eq!(a31.result, Word::Int(61));
}

#[test]
fn deep_recursion_survives_tiny_context_cache() {
    // fib via the calls workload source, on a 4-block cache: constant
    // copyback and faulting, same answer.
    let cfg = MachineConfig::default().with_ctx_blocks(4);
    let (out, m) = workloads::run_com(&workloads::CALLS, cfg, workloads::MAX_STEPS).unwrap();
    assert_eq!(out.result, Word::Int(workloads::CALLS.expected));
    let cc = m.ctx_cache_stats().unwrap();
    assert!(cc.copybacks > 0 || cc.faults > 0, "tiny cache must spill");
}

#[test]
fn all_ablation_configs_agree_on_every_workload() {
    for w in workloads::all() {
        let baseline = workloads::run_com(&w, MachineConfig::default(), workloads::MAX_STEPS)
            .unwrap()
            .0
            .result;
        for (label, cfg) in [
            ("no itlb", MachineConfig::default().without_itlb()),
            (
                "no ctx cache",
                MachineConfig::default().without_context_cache(),
            ),
            (
                "no eager free",
                MachineConfig::default().without_eager_lifo_free(),
            ),
            ("8 blocks", MachineConfig::default().with_ctx_blocks(8)),
            (
                "gc every 5k steps",
                MachineConfig {
                    gc_interval: Some(5_000),
                    ..MachineConfig::default()
                },
            ),
        ] {
            let got = workloads::run_com(&w, cfg, workloads::MAX_STEPS)
                .unwrap_or_else(|e| panic!("{} under {label}: {e}", w.name))
                .0
                .result;
            assert_eq!(got, baseline, "{} diverged under {label}", w.name);
        }
    }
}

#[test]
fn com_and_fith_agree_on_fresh_programs() {
    // A program written for this test only — not a workload — compiled to
    // both targets.
    let src = r#"
        class SmallInteger
          method collatz | n steps |
            n := self. steps := 0.
            [ n > 1 ] whileTrue: [
              n even ifTrue: [ n := n / 2 ] ifFalse: [ n := 3 * n + 1 ].
              steps := steps + 1 ].
            ^steps
          end
        end
    "#;
    let com_image = compile_com(src, CompileOptions::default()).unwrap();
    let fith_image = compile_fith(src, CompileOptions::default()).unwrap();
    for n in [6i64, 27, 97, 871] {
        let mut m = Machine::new(MachineConfig::default());
        m.load(&com_image).unwrap();
        let com = m
            .send("collatz", Word::Int(n), &[], 10_000_000)
            .unwrap()
            .result;
        let mut f = FithMachine::new(&fith_image);
        let fith = f
            .send(&fith_image, "collatz", Word::Int(n), &[], 10_000_000)
            .unwrap()
            .result;
        assert_eq!(com, fith, "collatz({n})");
    }
}

#[test]
fn gc_reclaims_workload_garbage_without_changing_results() {
    // trees allocates thousands of nodes; force frequent collections.
    let cfg = MachineConfig {
        gc_interval: Some(2_000),
        ..MachineConfig::default()
    };
    let (out, m) = workloads::run_com(&workloads::TREES, cfg, workloads::MAX_STEPS).unwrap();
    assert_eq!(out.result, Word::Int(workloads::TREES.expected));
    assert!(out.stats.gc_runs > 5, "expected frequent collections");
    // Storage must not grow monotonically: the tree stays reachable but
    // dead contexts and temporaries are reclaimed.
    let live = m.space().memory().buddy().allocated_words();
    let peak = m.space().memory().buddy().peak_words();
    assert!(live <= peak);
}

#[test]
fn instruction_safety_dnu_and_step_limit() {
    let src = "class SmallInteger method ok ^self end end";
    let image = compile_com(src, CompileOptions::default()).unwrap();
    let mut m = Machine::new(MachineConfig::default());
    m.load(&image).unwrap();
    // Atoms cannot multiply: dispatch must trap, not corrupt.
    let sel = m.intern_selector("undefinedThing");
    m.start_send(sel, Word::Int(3), &[]).unwrap();
    assert!(matches!(
        m.run(1000),
        Err(MachineError::DoesNotUnderstand { .. })
    ));
    // An infinite loop must hit the step budget, not hang.
    let looping = r#"
        class SmallInteger
          method forever | x | x := 0. [ true ] whileTrue: [ x := x + 1 ]. ^x end
        end
    "#;
    let image = compile_com(looping, CompileOptions::default()).unwrap();
    let mut m = Machine::new(MachineConfig::default());
    m.load(&image).unwrap();
    assert!(matches!(
        m.send("forever", Word::Int(0), &[], 10_000),
        Err(MachineError::StepLimit)
    ));
}

#[test]
fn escaped_contexts_survive_gc_and_still_work() {
    // A block outliving several GC cycles keeps its captured home alive.
    let src = r#"
        class SmallInteger
          method hold | acc blk i |
            acc := 0.
            blk := [ :d | acc := acc + d ].
            i := 0.
            [ i < self ] whileTrue: [ blk value: i. i := i + 1 ].
            ^acc
          end
        end
    "#;
    let cfg = MachineConfig {
        gc_interval: Some(500),
        ..MachineConfig::default()
    };
    let image = compile_com(src, CompileOptions::default()).unwrap();
    let mut m = Machine::new(cfg);
    m.load(&image).unwrap();
    let out = m.send("hold", Word::Int(200), &[], 10_000_000).unwrap();
    assert_eq!(out.result, Word::Int(199 * 200 / 2));
    assert!(out.stats.gc_runs > 0);
}

#[test]
fn object_allocation_stats_feed_t5() {
    let (_, m) = workloads::run_com(
        &workloads::TREES,
        MachineConfig::default(),
        workloads::MAX_STEPS,
    )
    .unwrap();
    let st = m.space().stats();
    assert!(
        st.allocs_of(AllocKind::Object) >= 230,
        "trees allocates nodes"
    );
    assert!(st.allocs_of(AllocKind::Context) > 0);
}

// ---------------------------------------------------------------------
// Embedding facade (`vm`): shared images, tenant sessions, scheduling
// ---------------------------------------------------------------------

use com_machine::vm::{Scheduler, Vm};

#[test]
fn one_image_many_tenants_runs_every_workload() {
    // Compile each workload once; its sessions share the image.
    for w in workloads::all() {
        let vm = workloads::vm_for(&w, MachineConfig::default(), CompileOptions::default());
        assert_eq!(
            vm.image().predecoded(),
            vm.image().methods(),
            "{}: every compiled method must pre-decode",
            w.name
        );
        let mut a = vm.session().unwrap();
        let mut b = vm.session().unwrap();
        let ra = workloads::run_on(&w, &mut a, workloads::MAX_STEPS).unwrap();
        let rb = workloads::run_on(&w, &mut b, workloads::MAX_STEPS).unwrap();
        assert_eq!(ra.result, Word::Int(w.expected), "{} tenant a", w.name);
        assert_eq!(rb.result, ra.result, "{} tenants disagree", w.name);
        assert_eq!(rb.stats, ra.stats, "{} twin tenants diverged", w.name);
    }
}

#[test]
fn reentrant_session_calls_match_fresh_machine_and_keep_roots_flat() {
    // Satellite: many sequential calls on ONE session must (a) keep
    // CycleStats bit-identical to the same send sequence on a fresh
    // engine-level machine driving the old API, and (b) never grow the
    // GC root set.
    let src = "class SmallInteger method tri ^self * (self + 1) / 2 end end";
    let vm = Vm::new(src).unwrap();
    let mut session = vm.session().unwrap();

    let image = compile_com(src, CompileOptions::default()).unwrap();
    let mut machine = Machine::new(MachineConfig::default());
    machine.load(&image).unwrap();

    let mut roots = None;
    for i in 1..=40i64 {
        let facade: i64 = session.call("tri", i).unwrap();
        let engine = machine.send("tri", Word::Int(i), &[], 1_000_000).unwrap();
        assert_eq!(Word::Int(facade), engine.result, "call {i}");
        // Cumulative stats stay bit-identical send after send: the facade
        // adds no architectural work.
        assert_eq!(session.stats(), engine.stats, "call {i}: stats diverged");
        let now = session.machine().code_root_count();
        match roots {
            None => roots = Some(now),
            Some(r) => assert_eq!(now, r, "call {i}: GC roots grew"),
        }
    }
}

#[test]
fn sixteen_tenants_round_robin_match_sequential_runs() {
    // The acceptance scenario in miniature: 16 sessions over shared
    // images, interleaved in 5000-step slices, must finish with results
    // and CycleStats identical to sequential execution.
    let picks = [
        workloads::CALLS,
        workloads::ARITH,
        workloads::DISPATCH,
        workloads::SORT,
    ];
    let vms: Vec<Vm> = picks
        .iter()
        .map(|w| workloads::vm_for(w, MachineConfig::default(), CompileOptions::default()))
        .collect();

    // Sequential baselines: one fresh session each, run to completion.
    let mut baselines = Vec::new();
    for i in 0..16 {
        let w = &picks[i % picks.len()];
        let mut s = vms[i % picks.len()].session().unwrap();
        let out = workloads::run_on(w, &mut s, workloads::MAX_STEPS).unwrap();
        assert_eq!(out.result, Word::Int(w.expected), "{} baseline", w.name);
        baselines.push(out);
    }

    // The same 16 tenants, interleaved.
    let mut sched = Scheduler::new(5_000);
    let mut ids = Vec::new();
    for i in 0..16 {
        let w = &picks[i % picks.len()];
        let mut s = vms[i % picks.len()].session().unwrap();
        s.call_start_with(w.entry, Word::Int(w.size), &[]).unwrap();
        ids.push(sched.spawn(s).unwrap());
    }
    sched.run();
    assert!(sched.rounds() > 1, "16 workloads must take several rounds");
    for (i, id) in ids.iter().enumerate() {
        let run = sched
            .session(*id)
            .unwrap()
            .last_run()
            .expect("task finished")
            .clone();
        assert_eq!(run.result, baselines[i].result, "tenant {i} result");
        assert_eq!(run.stats, baselines[i].stats, "tenant {i} stats");
    }
}
