//! Soundness differential suite for the whole-image class inference.
//!
//! Every workload (each compiled with the full standard library, so the
//! stdlib's own send sites are exercised too) runs on the real machine
//! with a dispatch observer installed. For every dynamically observed
//! dispatch we check the static analysis's contract:
//!
//! * the observed receiver class is a member of the site's statically
//!   inferred receiver set, and
//! * when the site was analyzed as a binary dispatch, the observed
//!   argument class is a member of the inferred argument set.
//!
//! Any counterexample is an inference soundness bug — the static set
//! claimed to over-approximate the dynamic behavior and did not.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use com_machine::core::{Machine, MachineConfig};
use com_machine::mem::{ClassId, Word};
use com_machine::stc::{compile_com, CompileOptions};
use com_machine::verify::ImageFacts;
use com_machine::workloads;

/// One deduplicated observation: (method index, pc) → set of
/// (receiver class, argument class) pairs seen at that site.
type Observed = HashMap<(usize, u64), HashSet<(ClassId, ClassId)>>;

/// The observer's raw sink, keyed by code base capability before the
/// capabilities are mapped back to image method indices.
type RawObserved = Arc<Mutex<HashMap<(u64, u64), HashSet<(ClassId, ClassId)>>>>;

/// Runs one workload with the dispatch observer and returns the
/// observations mapped back to image method indices (dispatches from
/// the synthesized entry send are not part of the analyzed image and
/// are skipped).
fn observe(w: &workloads::Workload) -> (com_machine::core::ProgramImage, Observed) {
    let image = compile_com(w.source, CompileOptions::default())
        .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", w.name));
    let mut m = Machine::new(MachineConfig::default());
    m.load(&image).unwrap();
    let raw: RawObserved = Arc::new(Mutex::new(HashMap::new()));
    let sink = Arc::clone(&raw);
    m.set_dispatch_observer(move |e| {
        sink.lock()
            .unwrap()
            .entry((e.method.base().raw(), e.pc))
            .or_default()
            .insert((e.key.classes[0], e.key.classes[1]));
    });
    let out = m
        .send(w.entry, Word::Int(w.size), &[], workloads::MAX_STEPS)
        .unwrap_or_else(|e| panic!("workload {} trapped: {e}", w.name));
    assert_eq!(
        out.result,
        Word::Int(w.expected),
        "workload {} result diverged under observation",
        w.name
    );
    // Map code base capabilities back to image method indices. The
    // loader pushes one code root per image method, in image order;
    // later roots belong to synthesized entry methods.
    let mut index: HashMap<u64, usize> = HashMap::new();
    for (i, root) in m.code_roots().iter().enumerate() {
        if i < image.methods.len() {
            index.insert(root.base().raw(), i);
        }
    }
    let mut observed: Observed = HashMap::new();
    for ((base, pc), keys) in raw.lock().unwrap().drain() {
        if let Some(&mindex) = index.get(&base) {
            observed.entry((mindex, pc)).or_default().extend(keys);
        }
    }
    (image, observed)
}

#[test]
fn every_observed_receiver_is_in_the_inferred_set() {
    let mut total_live = 0usize;
    let mut total_mono = 0usize;
    for w in workloads::all() {
        let (image, observed) = observe(&w);
        let facts = ImageFacts::analyze_with(&image, &[w.entry.to_string()])
            .unwrap_or_else(|e| panic!("workload {} failed analysis: {e}", w.name));
        assert!(
            !facts.inference.degraded,
            "workload {} must fit the analysis class budget",
            w.name
        );
        total_live += facts.summary.live_sites;
        total_mono += facts.summary.monomorphic;
        let universe = &facts.inference.universe;
        for ((mindex, pc), keys) in &observed {
            let site = facts
                .inference
                .site(*mindex, *pc as usize)
                .unwrap_or_else(|| {
                    panic!(
                        "{}: no site for executed {}@{pc}",
                        w.name, facts.methods[*mindex].name
                    )
                });
            for (recv, arg) in keys {
                assert!(
                    universe.contains(&site.receivers, *recv),
                    "{}: {}@{pc} dispatched on {:?} ({}), not in inferred receiver set {:?}",
                    w.name,
                    facts.methods[*mindex].name,
                    recv,
                    facts
                        .class_names
                        .get(recv)
                        .map(String::as_str)
                        .unwrap_or("?"),
                    site.receivers
                );
                if let Some(args) = &site.arg {
                    assert!(
                        universe.contains(args, *arg),
                        "{}: {}@{pc} argument class {:?} ({}) not in inferred set {:?}",
                        w.name,
                        facts.methods[*mindex].name,
                        arg,
                        facts
                            .class_names
                            .get(arg)
                            .map(String::as_str)
                            .unwrap_or("?"),
                        args
                    );
                }
            }
        }
    }
    // The devirtualization payoff the analysis exists for: across the
    // full workload suite (stdlib included in every image), at least
    // 80% of live send sites must resolve monomorphically.
    let pct = 100.0 * total_mono as f64 / total_live as f64;
    assert!(
        pct >= 80.0,
        "monomorphic resolution dropped to {pct:.1}% ({total_mono}/{total_live})"
    );
}

#[test]
fn observed_sites_are_never_classified_dead() {
    use com_machine::verify::SiteKind;
    for w in workloads::all() {
        let (image, observed) = observe(&w);
        let facts = ImageFacts::analyze(&image).unwrap();
        for (mindex, pc) in observed.keys() {
            let site = facts.inference.site(*mindex, *pc as usize).unwrap();
            assert_ne!(
                site.kind,
                SiteKind::Dead,
                "{}: {}@{pc} executed but was classified dead",
                w.name,
                facts.methods[*mindex].name
            );
        }
    }
}
