//! Service-runtime soak: 256 tenants with mixed workloads and
//! priorities served through the supervised runtime while a seeded
//! fault plan injects traps, stalls, worker panics, and fuel
//! exhaustion into 2% of requests. Prints throughput, shed count, and
//! per-fault-class retry outcomes, then drains — every tenant's
//! session survives whatever happened to its requests.
//!
//! ```sh
//! cargo run --release --example server_soak
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use com_machine::vm::server::{
    FaultKind, FaultPlan, Priority, Request, RetryPolicy, Server, ServerConfig, TenantConfig,
};
use com_machine::vm::Vm;

const TENANTS: usize = 256;
const REQUESTS_PER_TENANT: u64 = 4;
const WORKERS: usize = 4;
const QUEUE_DEPTH: usize = 128;
const FAULT_PER_MILLE: u32 = 20; // 2%
const MAX_AT_STEP: u64 = 200;
const SEED: u64 = 0x50AC_50AC;

const SOURCE: &str = r#"
    class SmallInteger
      method fib
        self < 2 ifTrue: [ ^self ].
        ^(self - 1) fib + (self - 2) fib
      end
      method factorial | acc |
        acc := 1.
        1 to: self do: [ :i | acc := acc * i ].
        ^acc
      end
      method triangle | acc |
        acc := 0.
        1 to: self do: [ :i | acc := acc + i ].
        ^acc
      end
    end
"#;

/// The mixed workload: tenant t's request r, cycling over the three
/// selectors with sizes small enough to keep the soak brisk.
fn request_for(t: usize, r: u64) -> Request {
    let req = match (t + r as usize) % 3 {
        0 => Request::new("fib", 10 + (t % 5) as i64),
        1 => Request::new("factorial", 8 + (t % 8) as i64),
        _ => Request::new("triangle", 50 + (t % 40) as i64),
    };
    // First request of each tenant is urgent, the last is best-effort:
    // under backpressure the server sheds queued Low work to admit High.
    let priority = match r {
        0 => Priority::High,
        r if r == REQUESTS_PER_TENANT - 1 => Priority::Low,
        _ => Priority::Normal,
    };
    req.priority(priority).idempotent(true)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Injected worker panics are expected; keep their default-hook
    // stderr spew out of the soak log (real panics still print).
    FaultPlan::silence_injected_panics();

    let names: Vec<String> = (0..TENANTS).map(|t| format!("tenant-{t:03}")).collect();
    let plan = FaultPlan::seeded(
        SEED,
        &names,
        REQUESTS_PER_TENANT,
        FAULT_PER_MILLE,
        MAX_AT_STEP,
    );
    let planned = plan.len();
    let by_kind: Vec<(FaultKind, usize)> = [
        FaultKind::Trap,
        FaultKind::Stall,
        FaultKind::OutOfFuel,
        FaultKind::WorkerPanic,
    ]
    .into_iter()
    .map(|k| (k, plan.count_of(k)))
    .collect();

    // Remember which (tenant, request) each fault targets so responses
    // can be tallied per fault class afterwards.
    let mut fault_of: BTreeMap<(String, u64), FaultKind> = BTreeMap::new();
    for name in &names {
        for r in 0..REQUESTS_PER_TENANT {
            if let Some(f) = plan.fault_for(name, r) {
                fault_of.insert((name.clone(), r), f.kind);
            }
        }
    }

    let vm = Vm::new(SOURCE)?;
    let config = ServerConfig {
        workers: WORKERS,
        queue_depth: QUEUE_DEPTH,
        base_slice: 500,
        // Injected fuel faults carry budgets up to MAX_AT_STEP; grants
        // below this limit are retried as transient.
        retry: RetryPolicy {
            retry_fuel_limit: MAX_AT_STEP + 1,
            ..RetryPolicy::default()
        },
    };
    let server = Server::with_faults(vm, config, plan);
    for (t, name) in names.iter().enumerate() {
        // A spread of scheduling weights: heavier tenants get longer
        // turns, everyone still makes progress.
        server.register(name, TenantConfig::weighted(1 + (t % 3) as u32))?;
    }

    println!(
        "soak: {TENANTS} tenants x {REQUESTS_PER_TENANT} requests over {WORKERS} workers, \
         queue depth {QUEUE_DEPTH}, {planned} faults planned ({FAULT_PER_MILLE}/1000)"
    );

    let started = Instant::now();
    let mut tickets = Vec::with_capacity(TENANTS * REQUESTS_PER_TENANT as usize);
    for r in 0..REQUESTS_PER_TENANT {
        for (t, name) in names.iter().enumerate() {
            tickets.push(server.submit_within(name, request_for(t, r), Duration::from_secs(60))?);
        }
    }
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let wall = started.elapsed();

    // Tally outcomes, splitting fault-targeted requests out per fault
    // class. A planned fault only fires if its request runs at least
    // `at_step` instructions, so "ok" counts both retried recoveries
    // and faults that never fired.
    let mut shed = 0u64;
    let mut clean_ok = 0u64;
    // kind -> (ok, failed, retries spent on that class)
    let mut class: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for resp in &responses {
        let fault = fault_of.get(&(resp.tenant.clone(), resp.request));
        match fault {
            Some(kind) => {
                let entry = class.entry(kind.label()).or_default();
                if resp.is_ok() {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
                entry.2 += u64::from(resp.attempts.saturating_sub(1));
            }
            None if resp.is_ok() => clean_ok += 1,
            None => shed += 1, // fault-free requests only fail by shedding here
        }
    }

    let stats = server.stats();
    println!(
        "\n{} requests in {:.2}s = {:.0} req/s ({} completed, {} failed, {} shed, {} retries, \
         {} faults injected, queue high-water {})",
        responses.len(),
        wall.as_secs_f64(),
        responses.len() as f64 / wall.as_secs_f64(),
        stats.completed,
        stats.failed,
        stats.shed,
        stats.retries,
        stats.faults_injected,
        stats.max_queued,
    );

    println!("\nfault class    planned  ok  failed  retries");
    for (kind, planned_of_kind) in &by_kind {
        let (ok, failed, retries) = class.get(kind.label()).copied().unwrap_or_default();
        println!(
            "{:<14} {:>7}  {:>2}  {:>6}  {:>7}",
            kind.label(),
            planned_of_kind,
            ok,
            failed,
            retries,
        );
    }
    println!(
        "\n{clean_ok} fault-free requests completed, {shed} shed under backpressure; \
         {} of {planned} planned faults fired (the rest targeted steps past their request's \
         end) — traps are terminal by design, transient classes retry with capped backoff",
        stats.faults_injected,
    );

    // Drain: no session is lost, whatever its requests went through.
    let report = server.drain(Duration::from_secs(5));
    assert_eq!(
        report.sessions.len(),
        TENANTS,
        "drain must keep every session"
    );
    let retired: u64 = report
        .sessions
        .iter()
        .map(|(_, s)| s.stats().instructions)
        .sum();
    println!(
        "\ndrained: all {} sessions preserved and re-callable, {retired} instructions retired total",
        report.sessions.len(),
    );
    Ok(())
}
