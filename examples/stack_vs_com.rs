//! The §5 design decision, live: the same source program compiled to the
//! Fith stack machine and to the three-address COM.
//!
//! "Stack machines while offering small code size require almost twice as
//! many instructions to implement a given source language program than a
//! three address machine."
//!
//! ```sh
//! cargo run --example stack_vs_com
//! ```

use com_machine::core::MachineConfig;
use com_machine::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("workload      COM instrs   Fith instrs   ratio");
    println!("--------------------------------------------------");
    let mut ratios = Vec::new();
    for w in workloads::portable() {
        // `run_com` drives the COM through the `vm` facade: one compiled
        // image, one tenant session per workload run.
        let (com, _) = workloads::run_com(&w, MachineConfig::default(), workloads::MAX_STEPS)?;
        let (fith, _) = workloads::run_fith(&w, workloads::MAX_STEPS)?;
        assert_eq!(com.result, fith.result, "{} must agree", w.name);
        let ratio = fith.stats.instructions as f64 / com.stats.instructions as f64;
        ratios.push(ratio);
        println!(
            "{:12} {:>11} {:>13}   {:.2}x",
            w.name, com.stats.instructions, fith.stats.instructions, ratio
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("--------------------------------------------------");
    println!("mean ratio: {mean:.2}x  (paper: \"almost twice as many\")");
    println!(
        "\nIt was this experiment that killed the Fith Machine: at equal per-instruction\n\
         cost, the three-address COM does the same work in roughly half the instructions."
    );
    Ok(())
}
