//! The paper's late-binding pitch, §2.1: "in Smalltalk, the quintessential
//! late binding language, it is easy to define a general sort routine —
//! one which will even work for lists of datatypes which are not yet
//! defined."
//!
//! One quicksort (from the standard library) sorts integers, floats, a
//! mixed array, and a user-defined `Money` class the sort has never heard
//! of — the ITLB keeps the polymorphic `<` sends cheap.
//!
//! ```sh
//! cargo run --example polymorphic_sort
//! ```

use com_machine::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        "A datatype the library sort was never written for."
        class Money extends Object
          vars cents
          method cents: c cents := c. ^self end
          method cents ^cents end
          method < other ^cents < other cents end
        end

        class SmallInteger
          method sortInts | a seed |
            a := self newArray. seed := 99.
            1 to: self do: [ :i |
              seed := (seed * 1309 + 13849) \\ 65536.
              a at: i put: seed ].
            a sort.
            a isSorted ifTrue: [ ^1 ]. ^0
          end
          method sortMixed | a seed |
            a := self newArray. seed := 7.
            1 to: self do: [ :i |
              seed := (seed * 1309 + 13849) \\ 65536.
              i even ifTrue: [ a at: i put: seed ]
                     ifFalse: [ a at: i put: seed * 0.001 ] ].
            a sort.
            a isSorted ifTrue: [ ^1 ]. ^0
          end
          method sortMoney | a seed m |
            a := self newArray. seed := 3.
            1 to: self do: [ :i |
              seed := (seed * 1309 + 13849) \\ 65536.
              m := Money new cents: seed.
              a at: i put: m ].
            a sort.
            ^(a at: 1) cents
          end
        end
    "#;

    // One compile serves every run below: each element type gets a fresh
    // isolated session over the same shared image.
    let vm = Vm::new(source)?;

    for (entry, what) in [
        ("sortInts", "300 integers"),
        (
            "sortMixed",
            "300 mixed ints and floats (mixed-mode < is primitive)",
        ),
        (
            "sortMoney",
            "300 Money objects (user-defined <, late bound)",
        ),
    ] {
        let mut session = vm.session()?;
        session.set_step_limit(10_000_000);
        let result: i64 = session.call(entry, 300i64)?;
        let out = session.last_run().expect("call completed").clone();
        let itlb = session.itlb_stats().expect("ITLB enabled");
        println!(
            "{entry:10} — {what}\n            result {}, {} instructions, ITLB hit {:.2}%, {} full lookups",
            result,
            out.stats.instructions,
            itlb.hit_ratio().unwrap_or(0.0) * 100.0,
            out.stats.full_lookups,
        );
    }
    println!(
        "\nThe same compiled sort served all three element types; dispatch cost stayed\n\
         at a handful of compulsory ITLB misses — the §1.1 claim that 'method lookup\n\
         overhead may be effectively eliminated'."
    );
    Ok(())
}
