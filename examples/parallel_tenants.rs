//! Parallel tenants: eight sessions drained by a four-worker pool, with
//! results and statistics bit-identical to running each tenant alone.
//!
//! ```sh
//! cargo run --example parallel_tenants
//! ```

use com_machine::vm::{ParallelExecutor, Vm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        class SmallInteger
          method factorial | acc |
            acc := 1.
            1 to: self do: [ :i | acc := acc * i ].
            ^acc
          end
          method fib
            self < 2 ifTrue: [ ^self ].
            ^(self - 1) fib + (self - 2) fib
          end
        end
    "#;

    // Compile once; the image is immutable and Send + Sync.
    let vm = Vm::new(source)?;

    // Eight tenants, mixed workloads, each with a resumable call already
    // in flight. Session is Send: a call started here may finish on any
    // worker thread.
    let jobs: [(&str, i64); 8] = [
        ("fib", 18),
        ("factorial", 20),
        ("fib", 15),
        ("factorial", 12),
        ("fib", 19),
        ("factorial", 15),
        ("fib", 12),
        ("factorial", 18),
    ];
    let mut tenants = Vec::new();
    for (selector, n) in jobs {
        let mut s = vm.session()?;
        s.call_start(selector, n)?;
        tenants.push(s);
    }

    // Solo references for the fidelity check below.
    let mut solo = Vec::new();
    for (selector, n) in jobs {
        let mut s = vm.session()?;
        let _: i64 = s.call(selector, n)?;
        solo.push(s.last_run().expect("completed").clone());
    }

    // Drain all eight across four OS threads, 2000 instructions per
    // slice. Yielded tenants go back in the queue and may resume on a
    // different worker — the pool records those migrations.
    let pool = ParallelExecutor::new(4, 2_000);
    let runs = pool.run(tenants);

    println!("tenant  call            result                slices  migrations  identical-to-solo");
    for (i, run) in runs.iter().enumerate() {
        let (selector, n) = jobs[i];
        let result: i64 = run.result_as()?.expect("completed");
        let stats = run.session.last_run().expect("completed").stats;
        let identical = stats == solo[i].stats && run.result == Some(solo[i].result);
        println!(
            "{i:<7} {:<15} {result:<21} {:<7} {:<11} {identical}",
            format!("{selector}({n})"),
            run.slices,
            run.migrations,
        );
        assert!(identical, "parallel execution must not change semantics");
    }

    let total: u64 = runs
        .iter()
        .map(|r| r.session.last_run().expect("completed").stats.instructions)
        .sum();
    println!(
        "\n{} tenants, {} workers, {total} instructions retired — every tenant bit-identical to solo",
        runs.len(),
        pool.workers(),
    );
    Ok(())
}
