//! Quickstart: compile a method, run it on the COM, inspect the machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use com_machine::core::{Machine, MachineConfig};
use com_machine::mem::Word;
use com_machine::stc::{compile_com, CompileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A method on SmallInteger: iterative factorial using the standard
    // library's control flow.
    let source = r#"
        class SmallInteger
          method factorial | acc |
            acc := 1.
            1 to: self do: [ :i | acc := acc * i ].
            ^acc
          end
        end
    "#;

    let image = compile_com(source, CompileOptions::default())?;
    let mut machine = Machine::new(MachineConfig::default());
    machine.load(&image)?;

    let out = machine.send("factorial", Word::Int(12), &[], 1_000_000)?;
    println!("12 factorial = {}", out.result);
    assert_eq!(out.result, Word::Int(479_001_600));

    let s = out.stats;
    println!(
        "\nexecuted {} instructions in {} cycles (CPI {:.2})",
        s.instructions,
        s.total_cycles(),
        s.cpi().unwrap_or(f64::NAN)
    );
    println!(
        "method calls: {}, returns: {}, contexts allocated: {}, freed LIFO: {}",
        s.calls, s.returns, s.contexts_allocated, s.contexts_freed_lifo
    );
    if let Some(itlb) = machine.itlb_stats() {
        println!(
            "ITLB: {} lookups, {:.2}% hit — only {} full method lookups were ever needed",
            itlb.accesses(),
            itlb.hit_ratio().unwrap_or(0.0) * 100.0,
            s.full_lookups
        );
    }
    Ok(())
}
