//! Quickstart: compile a program once, serve typed calls from cheap
//! tenant sessions, and slice a long call cooperatively.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use com_machine::vm::{Outcome, Vm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A method on SmallInteger: iterative factorial using the standard
    // library's control flow.
    let source = r#"
        class SmallInteger
          method factorial | acc |
            acc := 1.
            1 to: self do: [ :i | acc := acc * i ].
            ^acc
          end
        end
    "#;

    // Compile ONCE into a shared immutable image (classes, atoms,
    // selectors, every method pre-decoded)...
    let vm = Vm::new(source)?;

    // ...then spawn a session: a private machine over the shared image.
    // No recompiling, no redecoding — sessions are cheap and isolated.
    let mut session = vm.session()?;

    // Typed calls: Rust values in, Rust values out.
    let answer: i64 = session.call("factorial", 12)?;
    println!("12 factorial = {answer}");
    assert_eq!(answer, 479_001_600);

    let run = session.last_run().expect("a call completed");
    let s = run.stats;
    println!(
        "\nexecuted {} instructions in {} cycles (CPI {:.2})",
        s.instructions,
        s.total_cycles(),
        s.cpi().unwrap_or(f64::NAN)
    );
    println!(
        "method calls: {}, returns: {}, contexts allocated: {}, freed LIFO: {}",
        s.calls, s.returns, s.contexts_allocated, s.contexts_freed_lifo
    );
    if let Some(itlb) = session.itlb_stats() {
        println!(
            "ITLB: {} lookups, {:.2}% hit — only {} full method lookups were ever needed",
            itlb.accesses(),
            itlb.hit_ratio().unwrap_or(0.0) * 100.0,
            s.full_lookups
        );
    }

    // Resumable execution: a second tenant runs the same image in
    // 25-instruction slices — budget exhaustion is a yield, not an error.
    let mut tenant = vm.session()?;
    tenant.call_start("factorial", 20)?;
    let mut slices = 0u32;
    let big = loop {
        match tenant.resume::<i64>(25)? {
            Outcome::Done(n) => break n,
            Outcome::Yielded => slices += 1,
        }
    };
    println!("\nsecond tenant computed 20 factorial = {big} across {slices} yields");
    Ok(())
}
