//! The small object problem, §2.2: one program juggling "great numbers of
//! small segments and a lesser number of large segments".
//!
//! Builds thousands of tiny objects next to multi-thousand-word image
//! segments, then grows a collection until its backing array crosses
//! several exponent classes — exercising the floating point address
//! aliasing trap ("the segment descriptors of both the old and the new
//! pointers are set to point to the new segment").
//!
//! ```sh
//! cargo run --example image_pipeline
//! ```

use com_machine::vm::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        class SmallInteger
          method pipeline | w img out hist c p v |
            w := self.
            "A few large segments: the image and its blurred copy."
            img := (w * w) newArray.
            1 to: w * w do: [ :i | img at: i put: (i * 13 \\ 256) ].
            out := (w * w) newArray.
            out fill: 0.
            2 to: w - 1 do: [ :y |
              2 to: w - 1 do: [ :x |
                p := (y - 1) * w + x.
                v := (img at: p) + (img at: p - 1) + (img at: p + 1)
                     + (img at: p - w) + (img at: p + w).
                out at: p put: v / 5 ] ].
            "Many small segments: a 256-bin histogram of the result,
             then a growable collection of the non-empty bins."
            hist := 256 newArray.
            hist fill: 0.
            1 to: w * w do: [ :i |
              v := (out at: i) + 1.
              hist at: v put: (hist at: v) + 1 ].
            c := OrderedCollection new init.
            1 to: 256 do: [ :i |
              (hist at: i) > 0 ifTrue: [ c add: i - 1 ] ].
            ^c size
          end
        end
    "#;

    let vm = Vm::new(source)?;
    let mut session = vm.session()?;
    session.set_step_limit(50_000_000);
    let distinct: i64 = session.call("pipeline", 48i64)?;
    println!("distinct blurred intensities: {distinct}");

    // Show the address-space story: segment sizes in use, growth traps.
    let space = session.space();
    println!(
        "\nabsolute space: {} words live across {} buddy blocks (peak {} words)",
        space.memory().buddy().allocated_words(),
        space.memory().buddy().live_blocks(),
        space.memory().buddy().peak_words(),
    );
    println!(
        "growth forwarding traps taken: {} (stale pointers repaired: {})",
        space.mmu().forward_traps(),
        space.repairs(),
    );
    println!(
        "ATLB: {} translations, {:.2}% hit",
        space.mmu().atlb_stats().accesses(),
        space.mmu().atlb_stats().hit_ratio().unwrap_or(0.0) * 100.0,
    );
    println!(
        "\nOne 36-bit floating point format named every segment here — from 2-word\n\
         tree nodes to the {}-word image — with no fixed split to outgrow.",
        48 * 48
    );
    Ok(())
}
